//! The simulation runtime: machines, instances, invocations, the event
//! interpreter, and the [`Simulation`] façade.
//!
//! # Sharded architecture
//!
//! The cluster state is partitioned into *shards*: one per machine, plus
//! one *client shard* that owns injections and end-to-end request
//! statistics. Every event belongs to exactly one shard, and a handler
//! only ever mutates its own shard's state (plus the read-only
//! [`SharedState`]); anything destined for another shard travels as a
//! [`Message`] with a pre-minted `(time, key)` identity.
//!
//! Two drivers execute the same sharded state:
//!
//! * **workers = 1** — a single monolithic timing wheel holds every
//!   shard's events as `(shard, Ev)` pairs and pops them in global
//!   `(time, key)` order. No barriers, no threads: this is the fast
//!   serial path benchmarked by `dsb-bench`.
//! * **workers ≥ 2** — each shard gets its own timing wheel, driven by
//!   [`dsb_simcore::run_epochs`]: conservative lookahead windows of
//!   `lookahead_ns` (the minimum cross-shard fabric latency), with
//!   cross-shard messages exchanged as `(time, key)`-sorted batches at
//!   epoch barriers.
//!
//! Determinism across the two drivers (and any worker count) rests on
//! one invariant: **every** event's tie-break key is minted from its
//! shard's own counter — `(shard << 48) | ctr` — never from a wheel's
//! internal sequence. Per shard, events pop in ascending `(time, key)`
//! order under both drivers, so each shard sees the identical event
//! sequence, draws the identical RNG stream, and emits byte-identical
//! traces and statistics. `tests/parallel_conformance.rs` pins this.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use dsb_net::{Fabric, FpgaOffload, Nic, Protocol, Zone};
use dsb_simcore::{
    mix64, run_epochs, EpochShard, Outbox, Rng, Scheduler, SimDuration, SimTime, Transfer,
    UtilizationTracker,
};
use dsb_trace::{Span, SpanId, TraceCollector, TraceId};
use dsb_uarch::{CoreModel, ExecDomain};

use crate::chaos::{ChaosAction, ChaosPlan};
use crate::slab::{Slab, SlabKey};
use crate::spec::{
    AppSpec, ClusterSpec, Concurrency, EndpointRef, InstanceId, LbPolicy, MachineId, RequestType,
    ServiceId, Step, WorkerPolicy,
};
use crate::stats::{RequestStats, ServiceStats};

/// A read-only aggregate of the connection pools one service holds toward
/// a downstream service, as sampled by a telemetry scrape.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnPoolSnapshot {
    /// Connections currently checked out, summed over caller instances.
    pub in_use: u64,
    /// Pool capacity, summed over caller instances.
    pub limit: u64,
    /// Invocations parked waiting for a free connection.
    pub waiters: u64,
}

impl ConnPoolSnapshot {
    /// Fraction of pooled connections in use, in `[0, 1]` (0 if no pool).
    pub fn occupancy(&self) -> f64 {
        if self.limit == 0 {
            0.0
        } else {
            self.in_use as f64 / self.limit as f64
        }
    }

    /// A pool is saturated when every connection is checked out and at
    /// least one caller is parked waiting — the Fig. 17 backpressure
    /// signature.
    pub fn saturated(&self) -> bool {
        self.limit > 0 && self.in_use >= self.limit && self.waiters > 0
    }
}

/// Lifecycle of a service instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstanceState {
    /// Container is booting; not yet in load-balancer rotation.
    Starting,
    /// Serving traffic.
    Up,
    /// Removed from rotation; finishing queued work.
    Draining,
    /// Crashed by a [`crate::ChaosPlan`] fault: not in rotation, queued
    /// and in-flight work failed back to callers. Returns to `Up` at the
    /// restart boundary.
    Down,
}

const REF_FREQ_GHZ: f64 = 2.4;

fn hash64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------------
// Shared (read-only during event runs) state
// ---------------------------------------------------------------------------

/// Immutable-per-run facts about a machine. The mutable parts (NIC
/// queue, core occupancy) live in the owning shard's [`MachineRt`].
#[derive(Debug, Clone, Copy)]
struct MachineMeta {
    zone: Zone,
    core: CoreModel,
    offload: FpgaOffload,
    /// Crashed by a chaos fault; requests to its instances fail fast.
    down: bool,
}

/// Network fault state installed by a [`crate::ChaosPlan`]: partition
/// cuts between machine pairs and per-machine NIC delay multipliers.
/// Lives in [`SharedState`] (read-only during event runs, mutated only
/// at chaos boundaries) so both drivers observe identical fault state.
#[derive(Debug)]
struct NetChaos {
    n: usize,
    /// `n × n` row-major: `cut[a*n + b]` fails traffic from machine `a`
    /// to machine `b`.
    cut: Vec<bool>,
    /// Sender-side failure-detection timeout for cut traffic, clamped
    /// to at least the cluster lookahead (DSB015 floor).
    timeout_ns: u64,
    /// Per-machine propagation-delay multiplier (1.0 = healthy). Only
    /// ever ≥ 1.0, so the lookahead bound stays conservative.
    degrade: Vec<f64>,
}

impl NetChaos {
    fn new(n: usize) -> Self {
        NetChaos {
            n,
            cut: vec![false; n * n],
            timeout_ns: 0,
            degrade: vec![1.0; n],
        }
    }

    fn is_cut(&self, a: usize, b: usize) -> bool {
        self.cut[a * self.n + b]
    }

    fn degrade_factor(&self, a: usize, b: usize) -> f64 {
        self.degrade[a].max(self.degrade[b])
    }
}

/// Immutable-per-run facts about an instance; the queue/worker state
/// lives in the owning machine shard's [`InstRt`].
#[derive(Debug, Clone, Copy)]
struct InstMeta {
    service: ServiceId,
    machine: MachineId,
    state: InstanceState,
    /// `None` means on-demand (serverless) workers.
    worker_limit: Option<u32>,
}

#[derive(Debug)]
struct SharedServiceRt {
    spec: crate::spec::ServiceSpec,
    instances: Vec<InstanceId>,
    pinned: Option<InstanceId>,
}

/// Everything handlers read but never write during an event run. Shared
/// by reference across worker threads (`&SharedState` is the epoch
/// driver's context); mutated only between runs by the control surface.
#[derive(Debug)]
struct SharedState {
    app: AppSpec,
    services: Vec<SharedServiceRt>,
    insts: Vec<InstMeta>,
    machines: Vec<MachineMeta>,
    fabric: Fabric,
    window: SimDuration,
    cpu_quantum_ns: f64,
    admit_prob: f64,
    ref_core: CoreModel,
    /// Memoized `speed_factor(service, machine)`, `services × machines`
    /// row-major; see [`SharedState::rebuild_core_caches`].
    sf_cache: Vec<f64>,
    /// Memoized reference-core IPC per service.
    ref_ipc_cache: Vec<f64>,
    /// Conservative lookahead: no cross-shard message can arrive sooner
    /// than this many ns after it is sent. See [`cluster_lookahead`].
    lookahead_ns: u64,
    /// Active network faults (`None` when no chaos plan touched the
    /// fabric — the hot path pays one pointer check).
    chaos_net: Option<Box<NetChaos>>,
    /// Per-instance cold-until time (ns): `CacheLookup`s whose home
    /// shard is refilling before this instant are forced to miss.
    chaos_cold: Vec<u64>,
}

impl SharedState {
    fn speed_factor(&self, service: ServiceId, machine: MachineId) -> f64 {
        self.sf_cache[service.0 as usize * self.machines.len() + machine.0 as usize]
    }

    fn ref_ipc(&self, service: ServiceId) -> f64 {
        self.ref_ipc_cache[service.0 as usize]
    }

    /// Recomputes the memoized per-(service, machine) speed factors and
    /// per-service reference-core IPC. `CoreModel::speed_factor` walks
    /// the full uarch breakdown twice per call, which is far too slow
    /// for once-per-hop use; both inputs (service profiles, machine
    /// cores) are fixed except across [`Simulation::set_frequency`],
    /// which rebuilds this table.
    fn rebuild_core_caches(&mut self) {
        let nm = self.machines.len();
        self.sf_cache.clear();
        self.ref_ipc_cache.clear();
        for rt in &self.services {
            let p = &rt.spec.profile;
            self.ref_ipc_cache.push(self.ref_core.ipc(p));
            for m in &self.machines {
                self.sf_cache.push(m.core.speed_factor(p));
            }
        }
        debug_assert_eq!(self.sf_cache.len(), self.services.len() * nm);
    }

    /// Index of the client shard (one past the machine shards).
    fn client_shard(&self) -> u16 {
        self.machines.len() as u16
    }
}

/// The conservative lookahead bound for a cluster: the smallest latency
/// any cross-shard message (machine↔machine, machine↔client shard, or
/// injection) can experience. Derived from [`Fabric::min_delay`] over
/// every zone pair that can actually occur between *distinct* machines,
/// plus the Client/Edge origins traffic is injected from.
fn cluster_lookahead(fabric: &Fabric, machines: &[MachineMeta]) -> u64 {
    // Count machines per zone (Zone is not Ord; a tiny Vec scan is fine
    // for construction-time work).
    let mut zones: Vec<(Zone, u32)> = Vec::new();
    for m in machines {
        match zones.iter_mut().find(|(z, _)| *z == m.zone) {
            Some((_, c)) => *c += 1,
            None => zones.push((m.zone, 1)),
        }
    }
    if zones.is_empty() {
        return 1_000_000;
    }
    let mut l = u64::MAX;
    for (i, &(za, ca)) in zones.iter().enumerate() {
        // Two machines in the same zone talk at the same-zone fabric
        // latency (same-machine delivery is shard-local and exempt).
        if ca >= 2 {
            l = l.min(fabric.min_delay(za, za).as_nanos());
        }
        for &(zb, _) in &zones[i + 1..] {
            l = l.min(fabric.min_delay(za, zb).as_nanos());
            l = l.min(fabric.min_delay(zb, za).as_nanos());
        }
        // Injections and client replies cross between the client shard
        // and machine shards; `Simulation::inject_from` clamps exotic
        // origins to the lookahead, so only the standard ones bound it.
        for origin in [Zone::Client, Zone::Edge] {
            l = l.min(fabric.min_delay(origin, za).as_nanos());
            l = l.min(fabric.min_delay(za, origin).as_nanos());
        }
    }
    l.max(1)
}

// ---------------------------------------------------------------------------
// Per-shard runtime state
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct MachineRt {
    cores: u32,
    nic: Nic,
    busy: u32,
    /// Pool tickets of queued [`CoreJob`]s awaiting a free core.
    run_queue: VecDeque<u32>,
    util: UtilizationTracker,
}

#[derive(Debug)]
struct ConnPool {
    limit: u32,
    in_use: u32,
    waiters: VecDeque<SlabKey>,
}

#[derive(Debug)]
struct PendingReq {
    msg: RequestMsg,
    arrived: SimTime,
    recv_net_ns: f64,
}

/// Mutable per-instance state, owned by the instance's machine shard.
/// (Every shard allocates a slot per instance so indexing stays global;
/// only the owner's slot is ever touched.)
#[derive(Debug, Default)]
struct InstRt {
    warm_free: u32,
    busy_workers: u32,
    queue: VecDeque<PendingReq>,
    conns: BTreeMap<ServiceId, ConnPool>,
    inflight: u32,
    /// Completed invocations served by this instance (per-shard load).
    served: u64,
}

#[derive(Debug, Clone)]
struct Frame {
    block: Arc<Vec<Step>>,
    pc: usize,
}

#[derive(Debug, Clone)]
struct BlockedCall {
    target: EndpointRef,
    bytes: u64,
}

/// Return address of a cross-service call: the waiting invocation and
/// the machine (= shard) it lives on, so the callee can route its
/// response without a cross-shard lookup.
#[derive(Debug, Clone, Copy)]
struct Caller {
    inv: SlabKey,
    machine: MachineId,
}

#[derive(Debug)]
struct Invocation {
    service: ServiceId,
    instance: InstanceId,
    endpoint: u32,
    req: u64,
    rtype: RequestType,
    origin: Zone,
    partition_key: u64,
    spawn: SimTime,
    caller: Option<Caller>,
    parent_span: Option<SpanId>,
    span: u64,
    frames: Vec<Frame>,
    outstanding: u32,
    worker_held: bool,
    conn_to: Option<ServiceId>,
    blocked: Option<BlockedCall>,
    arrived: SimTime,
    started: SimTime,
    app_ns: f64,
    net_ns: f64,
    /// A downstream call failed (crash, partition, no live instance):
    /// the rest of the script is abandoned and the failure propagates
    /// to this invocation's own caller.
    failed: bool,
}

/// A request in flight between services.
#[derive(Debug)]
struct RequestMsg {
    req: u64,
    rtype: RequestType,
    origin: Zone,
    dst: InstanceId,
    endpoint: u32,
    caller: Option<Caller>,
    parent_span: Option<SpanId>,
    bytes: u64,
    partition_key: u64,
    spawn: SimTime,
}

/// A response in flight back to a caller. Carries its destination
/// machine and the serving instance so both the send-side cost model
/// and the caller-side load-balancer accounting need no cross-shard
/// reads.
#[derive(Debug)]
struct ResponseMsg {
    to_inv: SlabKey,
    to_machine: MachineId,
    from_inst: InstanceId,
    bytes: u64,
    protocol: Protocol,
    /// An error response: the callee crashed, was unreachable, or had
    /// itself a failed downstream call. Failed responses skip the
    /// receive-side CPU job and poison the caller.
    failed: bool,
}

/// A message in flight (carried by [`Ev::MsgArrive`], possibly across
/// shards).
#[derive(Debug)]
enum Message {
    Request(RequestMsg),
    Response(ResponseMsg),
    ClientReply {
        rtype: RequestType,
        spawn: SimTime,
        /// Serving instance, for the client shard's outstanding-count
        /// bookkeeping.
        inst: InstanceId,
        /// The request failed somewhere on its path (chaos faults);
        /// recorded as a failure, not a completion.
        failed: bool,
    },
}

/// A unit of CPU work scheduled on a machine core (carried by
/// [`Ev::CoreJobDone`]).
#[derive(Debug)]
struct CoreJob {
    dur: SimDuration,
    service: ServiceId,
    /// (domain, reference-core ns, actual ns) — up to two components.
    splits: [(ExecDomain, f64, f64); 2],
    cont: JobCont,
}

#[derive(Debug)]
enum JobCont {
    /// A script compute step finished; resume the invocation.
    StepDone(SlabKey),
    /// One CPU timeslice of a long compute step finished; requeue the
    /// remainder (models preemptive round-robin scheduling, so a long
    /// vision job cannot monopolize a weak core for seconds).
    StepChunk {
        inv: SlabKey,
        domain: ExecDomain,
        remaining_ref: f64,
        remaining_actual: f64,
    },
    /// Send-side processing finished; push the message into the network.
    SendDone {
        msg: Message,
        bytes: u64,
        /// FPGA pipeline delay (send + recv side), added to flight time.
        extra: SimDuration,
        /// Invocation whose span is charged the send processing.
        charge: Option<SlabKey>,
    },
    /// Receive-side processing for a request finished; enqueue at instance.
    RecvRequest(RequestMsg),
    /// Receive-side processing for a response finished; resume the caller.
    RecvResponse(SlabKey),
}

/// A pending client request (carried by [`Ev::Inject`]).
#[derive(Debug)]
struct InjectReq {
    entry: EndpointRef,
    rtype: RequestType,
    bytes: u64,
    partition_key: u64,
    origin: Zone,
}

/// A free-list arena for hot event payloads.
///
/// The scheduler copies every queued event through its timing-wheel
/// slots (pushes, cascades, drains), so events must stay small; bulky
/// payloads ([`CoreJob`], [`Message`], [`InjectReq`]) park here and the
/// event carries a `u32` ticket. Ids are minted and retired in event
/// order, which is deterministic per shard, and never leak into
/// simulation observables — pooling cannot perturb results.
#[derive(Debug)]
struct Pool<T> {
    slots: Vec<Option<T>>,
    free: Vec<u32>,
}

impl<T> Pool<T> {
    fn with_capacity(cap: usize) -> Self {
        Pool {
            slots: Vec::with_capacity(cap),
            free: Vec::with_capacity(cap),
        }
    }

    fn alloc(&mut self, value: T) -> u32 {
        match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = Some(value);
                i
            }
            None => {
                self.slots.push(Some(value));
                (self.slots.len() - 1) as u32
            }
        }
    }

    fn take(&mut self, id: u32) -> T {
        let v = self.slots[id as usize].take().expect("live pooled entry");
        self.free.push(id);
        v
    }

    fn get(&self, id: u32) -> &T {
        self.slots[id as usize].as_ref().expect("live pooled entry")
    }
}

/// The event alphabet of one shard. Machine shards see everything but
/// `Inject`; the client shard sees `Inject` and `MsgArrive` (replies).
#[derive(Debug)]
enum Ev {
    /// A client (or sensor) issues a request (pooled `InjectReq`).
    Inject(u32),
    /// A message finished its network flight (pooled `Message`).
    MsgArrive(u32),
    /// This shard's machine finished executing a job (pooled `CoreJob`).
    CoreJobDone { job: u32 },
    /// An I/O wait completed.
    IoDone { inv: SlabKey },
    /// A blocked caller was granted a downstream connection.
    ConnGranted { inv: SlabKey, to: ServiceId },
    /// A serverless cold start finished; a warm worker is available.
    WorkerSpawned { inst: InstanceId },
}

// ---------------------------------------------------------------------------
// Event sink: one handler body, two drivers
// ---------------------------------------------------------------------------

/// Where a handler's outputs go. `Mono` targets the single global wheel
/// (cross-shard messages are staged and drained into it immediately
/// after the handler returns); `Par` targets the shard's own wheel plus
/// the epoch outbox. Handlers are generic over this, so the two drivers
/// execute literally the same code.
enum Sink<'a> {
    Mono {
        shard: u16,
        wheel: &'a mut Scheduler<(u16, Ev)>,
        out: &'a mut Vec<(u16, u64, u64, Message)>,
    },
    Par {
        wheel: &'a mut Scheduler<Ev>,
        out: &'a mut Outbox<Message>,
    },
}

impl Sink<'_> {
    /// Schedules a shard-local event under a shard-minted key.
    fn local(&mut self, at: SimTime, key: u64, ev: Ev) {
        match self {
            Sink::Mono { shard, wheel, .. } => wheel.schedule_keyed(at, key, (*shard, ev)),
            Sink::Par { wheel, .. } => wheel.schedule_keyed(at, key, ev),
        }
    }

    /// Ships a message to another shard, arriving at absolute `at_ns`
    /// under the sender-minted `key`.
    fn cross(&mut self, dst: u16, at_ns: u64, key: u64, msg: Message) {
        match self {
            Sink::Mono { out, .. } => out.push((dst, at_ns, key, msg)),
            Sink::Par { out, .. } => out.send(dst as usize, at_ns, key, msg),
        }
    }
}

// ---------------------------------------------------------------------------
// Shard state + handlers
// ---------------------------------------------------------------------------

/// All mutable state owned by one shard. Shards `0..M` each own machine
/// `i`; shard `M` is the client shard (injections, request stats).
#[derive(Debug)]
struct ShardState {
    shard: u16,
    /// `Some` on machine shards, `None` on the client shard.
    machine: Option<MachineRt>,
    insts: Vec<InstRt>,
    /// Requests this shard has outstanding toward each instance — the
    /// `LeastOutstanding` balancer's (shard-local) signal.
    outstanding: Vec<u32>,
    /// Per-service round-robin cursors for picks made by this shard.
    rr: Vec<usize>,
    invocations: Slab<Invocation>,
    /// Recycled `Invocation::frames` vectors. Every invocation needs a
    /// frame stack and finishes with it empty; pooling the backing
    /// storage removes one allocation/free pair per invocation from the
    /// hot path.
    frame_pool: Vec<Vec<Frame>>,
    rng: Rng,
    /// Tie-break key counter; see [`ShardState::mint`].
    key_ctr: u64,
    /// Span-id counter (shard-tagged like keys, so ids are globally
    /// unique without coordination).
    span_ctr: u64,
    stats: Vec<ServiceStats>,
    collector: TraceCollector,
    /// Client shard only: end-to-end stats per request type.
    request_stats: Vec<RequestStats>,
    /// Client shard only: request-id counter.
    next_req: u64,
    job_pool: Pool<CoreJob>,
    msg_pool: Pool<Message>,
    inject_pool: Pool<InjectReq>,
}

impl ShardState {
    /// Mints the next globally-unique tie-break key: `(shard << 48) | ctr`.
    ///
    /// Both drivers order same-instant events by this key, so the pop
    /// sequence of a shard is identical whether its events sit in the
    /// monolithic wheel or its private one — the cornerstone of the
    /// serial/parallel conformance guarantee.
    fn mint(&mut self) -> u64 {
        self.key_ctr += 1;
        (self.shard as u64) << 48 | self.key_ctr
    }

    fn mint_span(&mut self) -> u64 {
        self.span_ctr += 1;
        (self.shard as u64) << 48 | self.span_ctr
    }

    /// This shard's machine id. Only valid on machine shards.
    fn machine_id(&self) -> MachineId {
        debug_assert!(self.machine.is_some(), "not a machine shard");
        MachineId(self.shard as u32)
    }

    // -- CPU ---------------------------------------------------------------

    fn submit_job(&mut self, sink: &mut Sink, now: SimTime, job: CoreJob) {
        let dur = job.dur;
        let id = self.job_pool.alloc(job);
        let key = self.mint();
        let m = self.machine.as_mut().expect("compute on a machine shard");
        if m.busy < m.cores {
            m.busy += 1;
            m.util.add_busy(now, now + dur);
            sink.local(now + dur, key, Ev::CoreJobDone { job: id });
        } else {
            m.run_queue.push_back(id);
        }
    }

    fn on_job_done(&mut self, sh: &SharedState, sink: &mut Sink, now: SimTime, job: u32) {
        let job = self.job_pool.take(job);
        // Start the next queued job (or free the core).
        let next = self
            .machine
            .as_mut()
            .expect("machine shard")
            .run_queue
            .pop_front();
        match next {
            Some(n) => {
                let dur = self.job_pool.get(n).dur;
                let key = self.mint();
                let m = self.machine.as_mut().expect("machine shard");
                m.util.add_busy(now, now + dur);
                sink.local(now + dur, key, Ev::CoreJobDone { job: n });
            }
            None => {
                // Saturating: a job surviving a chaos crash/restart cycle
                // may outlive the counter reset.
                let m = self.machine.as_mut().expect("machine shard");
                m.busy = m.busy.saturating_sub(1);
            }
        }
        // Account the finished job.
        let freq = sh.machines[self.shard as usize].core.freq_ghz;
        let ipc = sh.ref_ipc(job.service);
        let stats = &mut self.stats[job.service.0 as usize];
        for (domain, ref_ns, actual_ns) in job.splits {
            if actual_ns > 0.0 || ref_ns > 0.0 {
                stats.charge(domain, actual_ns, freq, ref_ns, ipc, REF_FREQ_GHZ);
            }
        }
        let actual: f64 = job.splits.iter().map(|s| s.2).sum();
        // Continuation.
        match job.cont {
            JobCont::StepDone(inv) => {
                if let Some(i) = self.invocations.get_mut(inv) {
                    i.app_ns += actual;
                }
                self.advance(sh, sink, now, inv);
            }
            JobCont::StepChunk {
                inv,
                domain,
                remaining_ref,
                remaining_actual,
            } => {
                if let Some(i) = self.invocations.get_mut(inv) {
                    i.app_ns += actual;
                } else {
                    return;
                }
                self.submit_compute(sh, sink, now, inv, domain, remaining_ref, remaining_actual);
            }
            JobCont::SendDone {
                msg,
                bytes,
                extra,
                charge,
            } => {
                let tx = self.transmit(sh, sink, now, bytes, extra, msg);
                if let Some(k) = charge {
                    if let Some(i) = self.invocations.get_mut(k) {
                        // Processing plus NIC queueing/serialization both
                        // count as network time (the paper's §5 metric).
                        i.net_ns += actual + tx.as_nanos() as f64;
                    }
                }
            }
            JobCont::RecvRequest(msg) => {
                self.enqueue_request(sh, sink, now, msg, actual);
            }
            JobCont::RecvResponse(inv) => {
                if let Some(i) = self.invocations.get_mut(inv) {
                    i.net_ns += actual;
                }
                self.on_response(sh, sink, now, inv, false);
            }
        }
    }

    // -- Network -----------------------------------------------------------

    /// Queues send-side processing for `msg` on this shard's cores, then
    /// (via `SendDone`) pushes it through the NIC and fabric.
    #[allow(clippy::too_many_arguments)]
    fn begin_send(
        &mut self,
        sh: &SharedState,
        sink: &mut Sink,
        now: SimTime,
        acct: ServiceId,
        protocol: Protocol,
        bytes: u64,
        msg: Message,
        charge: Option<SlabKey>,
    ) {
        let costs = protocol.costs(bytes);
        let from = self.machine_id();
        let (host_kernel, pipe_send) = sh.machines[from.0 as usize]
            .offload
            .apply(costs.send_kernel_ns);
        // Receiver-side FPGA pipeline delay is added here too (we know the
        // destination), so delivery happens in a single hop.
        let pipe_recv = match &msg {
            Message::Request(rm) => {
                let mach = sh.insts[rm.dst.0 as usize].machine;
                sh.machines[mach.0 as usize]
                    .offload
                    .apply(costs.recv_kernel_ns)
                    .1
            }
            Message::Response(resp) => {
                sh.machines[resp.to_machine.0 as usize]
                    .offload
                    .apply(costs.recv_kernel_ns)
                    .1
            }
            Message::ClientReply { .. } => 0.0,
        };
        let sf = sh.speed_factor(acct, from);
        let kernel_act = host_kernel * sf;
        let libs_act = costs.send_libs_ns * sf;
        let dur = SimDuration::from_nanos((kernel_act + libs_act) as u64);
        let job = CoreJob {
            dur,
            service: acct,
            splits: [
                (ExecDomain::Kernel, host_kernel, kernel_act),
                (ExecDomain::Libs, costs.send_libs_ns, libs_act),
            ],
            cont: JobCont::SendDone {
                msg,
                bytes,
                extra: SimDuration::from_nanos((pipe_send + pipe_recv) as u64),
                charge,
            },
        };
        self.submit_job(sink, now, job);
    }

    fn transmit(
        &mut self,
        sh: &SharedState,
        sink: &mut Sink,
        now: SimTime,
        bytes: u64,
        extra: SimDuration,
        msg: Message,
    ) -> SimDuration {
        let tx = self
            .machine
            .as_mut()
            .expect("send from a machine shard")
            .nic
            .transmit(now, bytes);
        let from_zone = sh.machines[self.shard as usize].zone;
        let dst_mach = match &msg {
            Message::Request(rm) => Some(sh.insts[rm.dst.0 as usize].machine),
            Message::Response(resp) => Some(resp.to_machine),
            Message::ClientReply { .. } => None,
        };
        match dst_mach {
            // Same machine: shard-local delivery, loopback latency.
            Some(dm) if dm.0 as u16 == self.shard => {
                let prop = sh.fabric.loopback();
                let key = self.mint();
                let idx = self.msg_pool.alloc(msg);
                sink.local(now + tx + prop + extra, key, Ev::MsgArrive(idx));
            }
            // Another machine's shard: fabric hop, cross-shard transfer.
            Some(dm) => {
                if let Some(net) = sh.chaos_net.as_deref() {
                    if net.is_cut(self.shard as usize, dm.0 as usize) {
                        self.drop_at_cut(sh, sink, now + tx, net.timeout_ns, msg);
                        return tx;
                    }
                }
                let z = sh.machines[dm.0 as usize].zone;
                let mut prop = sh.fabric.delay(from_zone, z, &mut self.rng);
                if let Some(net) = sh.chaos_net.as_deref() {
                    let f = net.degrade_factor(self.shard as usize, dm.0 as usize);
                    if f > 1.0 {
                        // Delays only grow (factor ≥ 1.0), so the DSB015
                        // lookahead floor below stays valid.
                        prop = SimDuration::from_nanos((prop.as_nanos() as f64 * f) as u64);
                    }
                }
                debug_assert!(
                    prop.as_nanos() >= sh.lookahead_ns,
                    "cross-shard hop {} below lookahead {}",
                    prop.as_nanos(),
                    sh.lookahead_ns
                );
                let key = self.mint();
                let at = (now + tx + prop + extra).as_nanos();
                sink.cross(dm.0 as u16, at, key, msg);
            }
            // Reply to the request's origin: the client shard owns it.
            None => {
                let mut prop = sh.fabric.delay(from_zone, Zone::Client, &mut self.rng);
                if let Some(net) = sh.chaos_net.as_deref() {
                    let f = net.degrade[self.shard as usize];
                    if f > 1.0 {
                        prop = SimDuration::from_nanos((prop.as_nanos() as f64 * f) as u64);
                    }
                }
                debug_assert!(
                    prop.as_nanos() >= sh.lookahead_ns,
                    "client hop {} below lookahead {}",
                    prop.as_nanos(),
                    sh.lookahead_ns
                );
                let key = self.mint();
                let at = (now + tx + prop + extra).as_nanos();
                sink.cross(sh.client_shard(), at, key, msg);
            }
        }
        tx
    }

    /// A message ran into a network cut. The sender's failure detector
    /// fires after `timeout_ns` (clamped ≥ the lookahead floor at
    /// install time): a cut request fails back to its caller on this
    /// very shard, a cut response is delivered to the caller as a
    /// failure after the same timeout.
    fn drop_at_cut(
        &mut self,
        sh: &SharedState,
        sink: &mut Sink,
        sent: SimTime,
        timeout_ns: u64,
        msg: Message,
    ) {
        let at = sent + SimDuration::from_nanos(timeout_ns);
        match msg {
            Message::Request(rm) => match rm.caller {
                Some(c) => {
                    debug_assert_eq!(
                        c.machine.0 as u16, self.shard,
                        "requests transmit from the caller's shard"
                    );
                    let svc = sh.insts[rm.dst.0 as usize].service;
                    let key = self.mint();
                    let idx = self.msg_pool.alloc(Message::Response(ResponseMsg {
                        to_inv: c.inv,
                        to_machine: c.machine,
                        from_inst: rm.dst,
                        bytes: 1,
                        protocol: sh.services[svc.0 as usize].spec.protocol,
                        failed: true,
                    }));
                    sink.local(at, key, Ev::MsgArrive(idx));
                }
                None => {
                    let key = self.mint();
                    sink.cross(
                        sh.client_shard(),
                        at.as_nanos(),
                        key,
                        Message::ClientReply {
                            rtype: rm.rtype,
                            spawn: rm.spawn,
                            inst: rm.dst,
                            failed: true,
                        },
                    );
                }
            },
            Message::Response(mut resp) => {
                resp.failed = true;
                let key = self.mint();
                let dst = resp.to_machine.0 as u16;
                sink.cross(dst, at.as_nanos(), key, Message::Response(resp));
            }
            Message::ClientReply { .. } => {
                unreachable!("client replies never cross a machine cut")
            }
        }
    }

    fn deliver(&mut self, sh: &SharedState, sink: &mut Sink, now: SimTime, msg: Message) {
        match msg {
            Message::Request(rm) => {
                let meta = sh.insts[rm.dst.0 as usize];
                debug_assert_eq!(meta.machine.0 as u16, self.shard, "request routed wrong");
                if meta.state == InstanceState::Down {
                    // Crashed while the request was in flight: fail fast,
                    // skipping the receive-side CPU of a dead host.
                    self.post_failed(sh, sink, now, rm);
                    return;
                }
                let service = meta.service;
                let protocol = sh.services[service.0 as usize].spec.protocol;
                let costs = protocol.costs(rm.bytes);
                let (host_kernel, _pipe) = sh.machines[self.shard as usize]
                    .offload
                    .apply(costs.recv_kernel_ns);
                let sf = sh.speed_factor(service, meta.machine);
                let kernel_act = host_kernel * sf;
                let libs_act = costs.recv_libs_ns * sf;
                let dur = SimDuration::from_nanos((kernel_act + libs_act) as u64);
                let job = CoreJob {
                    dur,
                    service,
                    splits: [
                        (ExecDomain::Kernel, host_kernel, kernel_act),
                        (ExecDomain::Libs, costs.recv_libs_ns, libs_act),
                    ],
                    cont: JobCont::RecvRequest(rm),
                };
                self.submit_job(sink, now, job);
            }
            Message::Response(resp) => {
                // The pick that sent this request was made on this shard;
                // settle its outstanding count even if the caller is gone.
                let o = &mut self.outstanding[resp.from_inst.0 as usize];
                *o = o.saturating_sub(1);
                if resp.failed {
                    // Error responses carry no payload worth parsing:
                    // skip the receive CPU job and poison the caller.
                    self.on_response(sh, sink, now, resp.to_inv, true);
                    return;
                }
                let Some(inv) = self.invocations.get(resp.to_inv) else {
                    return;
                };
                let service = inv.service;
                let costs = resp.protocol.costs(resp.bytes);
                let (host_kernel, _pipe) = sh.machines[self.shard as usize]
                    .offload
                    .apply(costs.recv_kernel_ns);
                let sf = sh.speed_factor(service, self.machine_id());
                let kernel_act = host_kernel * sf;
                let libs_act = costs.recv_libs_ns * sf;
                let dur = SimDuration::from_nanos((kernel_act + libs_act) as u64);
                let job = CoreJob {
                    dur,
                    service,
                    splits: [
                        (ExecDomain::Kernel, host_kernel, kernel_act),
                        (ExecDomain::Libs, costs.recv_libs_ns, libs_act),
                    ],
                    cont: JobCont::RecvResponse(resp.to_inv),
                };
                self.submit_job(sink, now, job);
            }
            Message::ClientReply {
                rtype,
                spawn,
                inst,
                failed,
            } => {
                let o = &mut self.outstanding[inst.0 as usize];
                *o = o.saturating_sub(1);
                if failed {
                    self.request_stats_mut(sh, rtype).fail(now);
                } else {
                    self.request_stats_mut(sh, rtype).complete(now, now - spawn);
                }
            }
        }
    }

    // -- Instance dispatch ---------------------------------------------------

    /// Fails a request back to whoever is waiting on it: its caller (as
    /// an error response) or the client (as a failed reply). Used when
    /// the destination instance is down — no CPU or NIC state of the
    /// dead host is touched; the notice travels after the conservative
    /// lookahead delay, identically under both drivers.
    fn post_failed(&mut self, sh: &SharedState, sink: &mut Sink, now: SimTime, rm: RequestMsg) {
        let at = now + SimDuration::from_nanos(sh.lookahead_ns);
        match rm.caller {
            Some(c) => {
                let svc = sh.insts[rm.dst.0 as usize].service;
                let resp = Message::Response(ResponseMsg {
                    to_inv: c.inv,
                    to_machine: c.machine,
                    from_inst: rm.dst,
                    bytes: 1,
                    protocol: sh.services[svc.0 as usize].spec.protocol,
                    failed: true,
                });
                let key = self.mint();
                if c.machine.0 as u16 == self.shard {
                    let idx = self.msg_pool.alloc(resp);
                    sink.local(at, key, Ev::MsgArrive(idx));
                } else {
                    sink.cross(c.machine.0 as u16, at.as_nanos(), key, resp);
                }
            }
            None => {
                let key = self.mint();
                sink.cross(
                    sh.client_shard(),
                    at.as_nanos(),
                    key,
                    Message::ClientReply {
                        rtype: rm.rtype,
                        spawn: rm.spawn,
                        inst: rm.dst,
                        failed: true,
                    },
                );
            }
        }
    }

    fn enqueue_request(
        &mut self,
        sh: &SharedState,
        sink: &mut Sink,
        now: SimTime,
        msg: RequestMsg,
        recv_net_ns: f64,
    ) {
        let inst_id = msg.dst;
        let meta = sh.insts[inst_id.0 as usize];
        if meta.state == InstanceState::Down {
            // The instance crashed while this request sat in receive
            // processing; fail it back rather than queueing at a corpse.
            self.post_failed(sh, sink, now, msg);
            return;
        }
        let on_demand = meta.worker_limit.is_none();
        let needs_spawn = {
            let rt = &mut self.insts[inst_id.0 as usize];
            rt.inflight += 1;
            rt.queue.push_back(PendingReq {
                msg,
                arrived: now,
                recv_net_ns,
            });
            on_demand && rt.warm_free == 0
        };
        if needs_spawn {
            let cold = match &sh.services[meta.service.0 as usize].spec.workers {
                WorkerPolicy::OnDemand { cold_start_ns } => cold_start_ns.sample(&mut self.rng),
                WorkerPolicy::Fixed(_) => 0.0,
            };
            let key = self.mint();
            sink.local(
                now + SimDuration::from_nanos(cold as u64),
                key,
                Ev::WorkerSpawned { inst: inst_id },
            );
        }
        self.try_dispatch(sh, sink, now, inst_id);
    }

    fn worker_available(&self, sh: &SharedState, inst_id: InstanceId) -> bool {
        let rt = &self.insts[inst_id.0 as usize];
        match sh.insts[inst_id.0 as usize].worker_limit {
            Some(limit) => rt.busy_workers < limit,
            None => rt.warm_free > 0,
        }
    }

    fn try_dispatch(
        &mut self,
        sh: &SharedState,
        sink: &mut Sink,
        now: SimTime,
        inst_id: InstanceId,
    ) {
        loop {
            if self.insts[inst_id.0 as usize].queue.is_empty()
                || !self.worker_available(sh, inst_id)
            {
                return;
            }
            let pending = {
                let rt = &mut self.insts[inst_id.0 as usize];
                if sh.insts[inst_id.0 as usize].worker_limit.is_none() {
                    rt.warm_free -= 1;
                }
                rt.busy_workers += 1;
                rt.queue.pop_front().expect("checked non-empty")
            };
            self.start_invocation(sh, sink, now, inst_id, pending);
        }
    }

    fn start_invocation(
        &mut self,
        sh: &SharedState,
        sink: &mut Sink,
        now: SimTime,
        inst_id: InstanceId,
        p: PendingReq,
    ) {
        let service = sh.insts[inst_id.0 as usize].service;
        let script = sh.services[service.0 as usize].spec.endpoints[p.msg.endpoint as usize]
            .script
            .clone();
        let span = self.mint_span();
        let mut frames = self.frame_pool.pop().unwrap_or_default();
        frames.push(Frame {
            block: script,
            pc: 0,
        });
        let inv = Invocation {
            service,
            instance: inst_id,
            endpoint: p.msg.endpoint,
            req: p.msg.req,
            rtype: p.msg.rtype,
            origin: p.msg.origin,
            partition_key: p.msg.partition_key,
            spawn: p.msg.spawn,
            caller: p.msg.caller,
            parent_span: p.msg.parent_span,
            span,
            frames,
            outstanding: 0,
            worker_held: true,
            conn_to: None,
            blocked: None,
            arrived: p.arrived,
            started: now,
            app_ns: 0.0,
            net_ns: p.recv_net_ns,
            failed: false,
        };
        let key = self.invocations.insert(inv);
        self.advance(sh, sink, now, key);
    }

    // -- Script interpreter --------------------------------------------------

    fn next_step(&mut self, key: SlabKey) -> Option<Option<Step>> {
        // Outer None: invocation vanished. Inner None: script finished.
        let inv = self.invocations.get_mut(key)?;
        loop {
            let Some(frame) = inv.frames.last_mut() else {
                return Some(None);
            };
            if frame.pc >= frame.block.len() {
                inv.frames.pop();
                continue;
            }
            let step = frame.block[frame.pc].clone();
            frame.pc += 1;
            return Some(Some(step));
        }
    }

    fn advance(&mut self, sh: &SharedState, sink: &mut Sink, now: SimTime, key: SlabKey) {
        loop {
            let Some(step) = self.next_step(key) else {
                return;
            };
            let Some(step) = step else {
                self.finish_invocation(sh, sink, now, key);
                return;
            };
            match step {
                Step::Compute { ns, domain } => {
                    let ref_ns = ns.sample(&mut self.rng);
                    let service = self
                        .invocations
                        .get(key)
                        .expect("advancing live inv")
                        .service;
                    let sf = sh.speed_factor(service, self.machine_id());
                    let actual = ref_ns * sf;
                    self.submit_compute(sh, sink, now, key, domain, ref_ns, actual);
                    return;
                }
                Step::Io { ns } => {
                    let wait = ns.sample(&mut self.rng);
                    let k = self.mint();
                    sink.local(
                        now + SimDuration::from_nanos(wait as u64),
                        k,
                        Ev::IoDone { inv: key },
                    );
                    return;
                }
                Step::Call { target, req_bytes } => {
                    let bytes = req_bytes.sample(&mut self.rng).max(1.0) as u64;
                    self.invocations.get_mut(key).expect("live inv").outstanding = 1;
                    self.maybe_release_worker(sh, sink, now, key);
                    let blocking = sh.services[target.service.0 as usize]
                        .spec
                        .protocol
                        .blocking_connections();
                    if blocking {
                        self.call_with_connection(sh, sink, now, key, target, bytes);
                    } else {
                        self.send_call(sh, sink, now, key, target, bytes);
                    }
                    return;
                }
                Step::ParCall { calls } => {
                    if calls.is_empty() {
                        continue;
                    }
                    let sampled: Vec<(EndpointRef, u64)> = calls
                        .iter()
                        .map(|(t, d)| (*t, d.sample(&mut self.rng).max(1.0) as u64))
                        .collect();
                    self.invocations.get_mut(key).expect("live inv").outstanding =
                        sampled.len() as u32;
                    self.maybe_release_worker(sh, sink, now, key);
                    for (t, b) in sampled {
                        self.send_call(sh, sink, now, key, t, b);
                    }
                    return;
                }
                Step::FanCall {
                    target,
                    req_bytes,
                    n,
                } => {
                    let count = n.sample(&mut self.rng).round().max(0.0) as u32;
                    if count == 0 {
                        continue;
                    }
                    let bytes: Vec<u64> = (0..count)
                        .map(|_| req_bytes.sample(&mut self.rng).max(1.0) as u64)
                        .collect();
                    self.invocations.get_mut(key).expect("live inv").outstanding = count;
                    self.maybe_release_worker(sh, sink, now, key);
                    for b in bytes {
                        self.send_call(sh, sink, now, key, target, b);
                    }
                    return;
                }
                Step::Branch { p, then, els } => {
                    let block = if self.rng.chance(p) { then } else { els };
                    if !block.is_empty() {
                        let inv = self.invocations.get_mut(key).expect("live inv");
                        inv.frames.push(Frame { block, pc: 0 });
                    }
                    continue;
                }
                Step::CacheLookup {
                    cache,
                    hit,
                    then,
                    els,
                } => {
                    // Draw unconditionally first: fault-free runs then
                    // consume the identical RNG stream as an equivalent
                    // `Branch`, keeping existing goldens byte-stable.
                    let hit_drawn = self.rng.chance(hit);
                    let forced = {
                        let insts = &sh.services[cache.service.0 as usize].instances;
                        if insts.is_empty() {
                            true
                        } else {
                            let pk = self
                                .invocations
                                .get(key)
                                .expect("advancing live inv")
                                .partition_key;
                            let home = insts[(hash64(pk) % insts.len() as u64) as usize];
                            sh.insts[home.0 as usize].state == InstanceState::Down
                                || now.as_nanos() < sh.chaos_cold[home.0 as usize]
                        }
                    };
                    if hit_drawn && forced {
                        // Would have hit, but the key's home shard is
                        // down or refilling: a chaos-induced cold miss.
                        self.stats[cache.service.0 as usize].refill_misses += 1;
                    }
                    let block = if hit_drawn && !forced { then } else { els };
                    if !block.is_empty() {
                        let inv = self.invocations.get_mut(key).expect("live inv");
                        inv.frames.push(Frame { block, pc: 0 });
                    }
                    continue;
                }
            }
        }
    }

    /// Submits a compute step as one core job, or as timeslices if it is
    /// long (round-robin preemption).
    #[allow(clippy::too_many_arguments)]
    fn submit_compute(
        &mut self,
        sh: &SharedState,
        sink: &mut Sink,
        now: SimTime,
        key: SlabKey,
        domain: ExecDomain,
        ref_ns: f64,
        actual_ns: f64,
    ) {
        let service = self.invocations.get(key).expect("live inv").service;
        let quantum = sh.cpu_quantum_ns;
        if actual_ns <= quantum {
            let job = CoreJob {
                dur: SimDuration::from_nanos(actual_ns as u64),
                service,
                splits: [(domain, ref_ns, actual_ns), (ExecDomain::Other, 0.0, 0.0)],
                cont: JobCont::StepDone(key),
            };
            self.submit_job(sink, now, job);
        } else {
            let frac = quantum / actual_ns;
            let chunk_ref = ref_ns * frac;
            let job = CoreJob {
                dur: SimDuration::from_nanos(quantum as u64),
                service,
                splits: [(domain, chunk_ref, quantum), (ExecDomain::Other, 0.0, 0.0)],
                cont: JobCont::StepChunk {
                    inv: key,
                    domain,
                    remaining_ref: ref_ns - chunk_ref,
                    remaining_actual: actual_ns - quantum,
                },
            };
            self.submit_job(sink, now, job);
        }
    }

    /// Event-driven services release their worker at the first await point.
    fn maybe_release_worker(
        &mut self,
        sh: &SharedState,
        sink: &mut Sink,
        now: SimTime,
        key: SlabKey,
    ) {
        let (service, held, inst_id) = {
            let inv = self.invocations.get(key).expect("live inv");
            (inv.service, inv.worker_held, inv.instance)
        };
        if held && sh.services[service.0 as usize].spec.concurrency == Concurrency::Async {
            self.invocations.get_mut(key).expect("live").worker_held = false;
            self.release_worker(sh, inst_id);
            self.try_dispatch(sh, sink, now, inst_id);
        }
    }

    fn release_worker(&mut self, sh: &SharedState, inst_id: InstanceId) {
        let rt = &mut self.insts[inst_id.0 as usize];
        rt.busy_workers -= 1;
        if sh.insts[inst_id.0 as usize].worker_limit.is_none() {
            rt.warm_free += 1;
        }
    }

    fn call_with_connection(
        &mut self,
        sh: &SharedState,
        sink: &mut Sink,
        now: SimTime,
        key: SlabKey,
        target: EndpointRef,
        bytes: u64,
    ) {
        let inst_id = self.invocations.get(key).expect("live inv").instance;
        let limit = sh.services[target.service.0 as usize].spec.conn_limit;
        let granted = {
            let rt = &mut self.insts[inst_id.0 as usize];
            let pool = rt.conns.entry(target.service).or_insert_with(|| ConnPool {
                limit,
                in_use: 0,
                waiters: VecDeque::with_capacity(8),
            });
            if pool.in_use < pool.limit {
                pool.in_use += 1;
                true
            } else {
                pool.waiters.push_back(key);
                false
            }
        };
        if granted {
            self.invocations.get_mut(key).expect("live inv").conn_to = Some(target.service);
            self.send_call(sh, sink, now, key, target, bytes);
        } else {
            self.invocations.get_mut(key).expect("live inv").blocked =
                Some(BlockedCall { target, bytes });
        }
    }

    fn send_call(
        &mut self,
        sh: &SharedState,
        sink: &mut Sink,
        now: SimTime,
        key: SlabKey,
        target: EndpointRef,
        bytes: u64,
    ) {
        let (service, req, rtype, origin, pk, spawn, span) = {
            let inv = self.invocations.get(key).expect("live inv");
            (
                inv.service,
                inv.req,
                inv.rtype,
                inv.origin,
                inv.partition_key,
                inv.spawn,
                inv.span,
            )
        };
        let Some(dst) = self.pick_instance(sh, target.service, pk) else {
            // No live instance (chaos crash took the whole tier): the
            // call fails fast, as if an error response arrived at once.
            self.on_response(sh, sink, now, key, true);
            return;
        };
        let protocol = sh.services[target.service.0 as usize].spec.protocol;
        let msg = Message::Request(RequestMsg {
            req,
            rtype,
            origin,
            dst,
            endpoint: target.endpoint,
            caller: Some(Caller {
                inv: key,
                machine: self.machine_id(),
            }),
            parent_span: Some(SpanId(span)),
            bytes,
            partition_key: pk,
            spawn,
        });
        self.begin_send(sh, sink, now, service, protocol, bytes, msg, Some(key));
    }

    /// Picks a destination instance for a call from this shard, or
    /// `None` when the service has no live instance (every replica
    /// crashed) — callers fail the request fast in that case. Every
    /// policy bumps the shard-local outstanding count of its pick (so
    /// switching policies mid-run never sees stale counters); the count
    /// settles when the response (or client reply) arrives back here.
    fn pick_instance(
        &mut self,
        sh: &SharedState,
        service: ServiceId,
        partition_key: u64,
    ) -> Option<InstanceId> {
        let rt = &sh.services[service.0 as usize];
        let pick = if let Some(pin) = rt.pinned {
            pin
        } else {
            // Runs once per hop on the hot path: scan the Up subset in
            // place instead of collecting it.
            let up_count = rt
                .instances
                .iter()
                .filter(|i| sh.insts[i.0 as usize].state == InstanceState::Up)
                .count();
            if up_count == 0 {
                return None;
            }
            match rt.spec.lb {
                LbPolicy::RoundRobin => {
                    let r = &mut self.rr[service.0 as usize];
                    *r = r.wrapping_add(1);
                    let idx = *r % up_count;
                    rt.instances
                        .iter()
                        .copied()
                        .filter(|i| sh.insts[i.0 as usize].state == InstanceState::Up)
                        .nth(idx)
                        .expect("idx < up_count")
                }
                LbPolicy::LeastOutstanding => rt
                    .instances
                    .iter()
                    .copied()
                    .filter(|i| sh.insts[i.0 as usize].state == InstanceState::Up)
                    .min_by_key(|i| self.outstanding[i.0 as usize])
                    .expect("non-empty"),
                LbPolicy::Partition => {
                    // Shard membership must be a stable function of the key
                    // over the *total* instance list: hashing modulo the `Up`
                    // subset would remap every key the moment one shard leaves
                    // rotation. A key whose home shard is down fails over by
                    // probing forward, so only that shard's keys move.
                    let all = &rt.instances;
                    let start = (hash64(partition_key) % all.len() as u64) as usize;
                    (0..all.len())
                        .map(|off| all[(start + off) % all.len()])
                        .find(|i| sh.insts[i.0 as usize].state == InstanceState::Up)
                        .expect("checked above: at least one Up instance")
                }
            }
        };
        self.outstanding[pick.0 as usize] += 1;
        Some(pick)
    }

    /// Settles one downstream call of `key`. With `failed`, the call's
    /// error poisons the invocation: the rest of its script is dropped
    /// and, once every outstanding call settles, the failure propagates
    /// to this invocation's own caller via [`ShardState::finish_invocation`].
    fn on_response(
        &mut self,
        sh: &SharedState,
        sink: &mut Sink,
        now: SimTime,
        key: SlabKey,
        failed: bool,
    ) {
        let Some(inv) = self.invocations.get_mut(key) else {
            return;
        };
        if failed {
            inv.failed = true;
            inv.frames.clear();
        }
        let inst_id = inv.instance;
        let conn_release = inv.conn_to.take();
        inv.outstanding = inv.outstanding.saturating_sub(1);
        let done_waiting = inv.outstanding == 0;
        if let Some(to) = conn_release {
            self.release_connection(sink, now, inst_id, to);
        }
        if done_waiting {
            self.advance(sh, sink, now, key);
        }
    }

    fn release_connection(
        &mut self,
        sink: &mut Sink,
        now: SimTime,
        inst_id: InstanceId,
        to: ServiceId,
    ) {
        let waiter = {
            let rt = &mut self.insts[inst_id.0 as usize];
            let pool = rt.conns.get_mut(&to).expect("pool exists on release");
            match pool.waiters.pop_front() {
                Some(w) => Some(w), // token transfers to the waiter
                None => {
                    pool.in_use -= 1;
                    None
                }
            }
        };
        if let Some(w) = waiter {
            let key = self.mint();
            sink.local(now, key, Ev::ConnGranted { inv: w, to });
        }
    }

    fn on_conn_granted(
        &mut self,
        sh: &SharedState,
        sink: &mut Sink,
        now: SimTime,
        key: SlabKey,
        to: ServiceId,
    ) {
        let Some(inv) = self.invocations.get_mut(key) else {
            // Waiter vanished (should not happen for blocked callers);
            // return the token.
            return;
        };
        let blocked = inv.blocked.take().expect("granted inv was blocked");
        inv.conn_to = Some(to);
        self.send_call(sh, sink, now, key, blocked.target, blocked.bytes);
    }

    fn finish_invocation(&mut self, sh: &SharedState, sink: &mut Sink, now: SimTime, key: SlabKey) {
        let mut inv = self.invocations.remove(key).expect("finishing live inv");
        // The frame stack is empty by now (the script ran to completion);
        // recycle its backing storage for the next invocation.
        let mut frames = std::mem::take(&mut inv.frames);
        frames.clear();
        if self.frame_pool.len() < 1024 {
            self.frame_pool.push(frames);
        }
        // Span.
        self.collector.record(Span {
            trace: TraceId(inv.req),
            id: SpanId(inv.span),
            parent: inv.parent_span,
            service: inv.service.0,
            endpoint: inv.endpoint,
            start: inv.arrived,
            end: now,
            queue_time: inv.started - inv.arrived,
            app_time: SimDuration::from_nanos(inv.app_ns as u64),
            net_time: SimDuration::from_nanos(inv.net_ns as u64),
        });
        let stats = &mut self.stats[inv.service.0 as usize];
        stats.invocations += 1;
        let e = inv.endpoint as usize;
        if stats.endpoint_invocations.len() <= e {
            stats.endpoint_invocations.resize(e + 1, 0);
        }
        stats.endpoint_invocations[e] += 1;
        self.insts[inv.instance.0 as usize].served += 1;
        // Worker + inflight.
        if inv.worker_held {
            self.release_worker(sh, inv.instance);
        }
        self.insts[inv.instance.0 as usize].inflight -= 1;
        self.try_dispatch(sh, sink, now, inv.instance);
        // Reply.
        let spec = &sh.services[inv.service.0 as usize].spec;
        let resp_bytes = spec.endpoints[inv.endpoint as usize]
            .resp_bytes
            .sample(&mut self.rng)
            .max(1.0) as u64;
        let protocol = spec.protocol;
        let msg = match inv.caller {
            Some(c) => Message::Response(ResponseMsg {
                to_inv: c.inv,
                to_machine: c.machine,
                from_inst: inv.instance,
                bytes: resp_bytes,
                protocol,
                failed: inv.failed,
            }),
            None => Message::ClientReply {
                rtype: inv.rtype,
                spawn: inv.spawn,
                inst: inv.instance,
                failed: inv.failed,
            },
        };
        self.begin_send(sh, sink, now, inv.service, protocol, resp_bytes, msg, None);
    }

    fn request_stats_mut(&mut self, sh: &SharedState, rtype: RequestType) -> &mut RequestStats {
        let idx = rtype.0 as usize;
        if idx >= self.request_stats.len() {
            let w = sh.window;
            self.request_stats
                .resize_with(idx + 1, || RequestStats::new(w));
        }
        &mut self.request_stats[idx]
    }

    fn on_inject(&mut self, sh: &SharedState, sink: &mut Sink, now: SimTime, r: InjectReq) {
        let admit = sh.admit_prob >= 1.0 || self.rng.chance(sh.admit_prob);
        let stats = self.request_stats_mut(sh, r.rtype);
        stats.issued += 1;
        if !admit {
            stats.rejected += 1;
            return;
        }
        self.next_req += 1;
        let req = self.next_req;
        let Some(dst) = self.pick_instance(sh, r.entry.service, r.partition_key) else {
            // Whole entry tier down: the client sees an immediate error.
            self.request_stats_mut(sh, r.rtype).fail(now);
            return;
        };
        let dst_mach = sh.insts[dst.0 as usize].machine;
        let dst_zone = sh.machines[dst_mach.0 as usize].zone;
        let delay = sh.fabric.delay(r.origin, dst_zone, &mut self.rng);
        // Exotic origins (e.g. a Rack zone) could undercut the lookahead
        // bound; clamp the arrival. Identical in both drivers, and a
        // no-op for the standard Client/Edge origins.
        let at = (now + delay).max(now + SimDuration::from_nanos(sh.lookahead_ns));
        let key = self.mint();
        let msg = Message::Request(RequestMsg {
            req,
            rtype: r.rtype,
            origin: r.origin,
            dst,
            endpoint: r.entry.endpoint,
            caller: None,
            parent_span: None,
            bytes: r.bytes,
            partition_key: r.partition_key,
            spawn: now,
        });
        sink.cross(dst_mach.0 as u16, at.as_nanos(), key, msg);
    }
}

/// Interprets one event against its shard. Shared verbatim by both
/// drivers; `sink` decides where outputs land.
fn dispatch(st: &mut ShardState, sh: &SharedState, sink: &mut Sink, now: SimTime, ev: Ev) {
    match ev {
        Ev::Inject(id) => {
            let r = st.inject_pool.take(id);
            st.on_inject(sh, sink, now, r);
        }
        Ev::MsgArrive(id) => {
            let msg = st.msg_pool.take(id);
            st.deliver(sh, sink, now, msg);
        }
        Ev::CoreJobDone { job } => st.on_job_done(sh, sink, now, job),
        Ev::IoDone { inv } => st.advance(sh, sink, now, inv),
        Ev::ConnGranted { inv, to } => st.on_conn_granted(sh, sink, now, inv, to),
        Ev::WorkerSpawned { inst } => {
            st.insts[inst.0 as usize].warm_free += 1;
            st.try_dispatch(sh, sink, now, inst);
        }
    }
}

// ---------------------------------------------------------------------------
// The parallel shard: a wheel + state pair driven by the epoch engine
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct Shard {
    sched: Scheduler<Ev>,
    st: ShardState,
}

impl EpochShard<SharedState> for Shard {
    type Transfer = Message;

    fn next_event_at(&mut self) -> Option<u64> {
        self.sched.next_event_at()
    }

    fn run_window(&mut self, sh: &SharedState, last: u64, out: &mut Outbox<Message>) {
        let until = SimTime::from_nanos(last);
        while let Some(ev) = self.sched.pop_due(until) {
            let now = self.sched.now();
            let mut sink = Sink::Par {
                wheel: &mut self.sched,
                out: &mut *out,
            };
            dispatch(&mut self.st, sh, &mut sink, now, ev);
        }
    }

    fn absorb(&mut self, batch: Vec<Transfer<Message>>) {
        for (at, key, msg) in batch {
            let idx = self.st.msg_pool.alloc(msg);
            self.sched
                .schedule_keyed(SimTime::from_nanos(at), key, Ev::MsgArrive(idx));
        }
    }
}

// ---------------------------------------------------------------------------
// Façade
// ---------------------------------------------------------------------------

/// A complete simulation: sharded cluster state plus the control surface
/// the paper's experiments drive.
///
/// # Example
///
/// ```
/// use dsb_core::{AppBuilder, ClusterSpec, RequestType, Simulation, Step};
/// use dsb_simcore::{Dist, SimDuration, SimTime};
///
/// let mut app = AppBuilder::new("hello");
/// let svc = app.service("svc").event_driven().workers(64).build();
/// let ep = app.endpoint(svc, "get", Dist::constant(512.0), vec![Step::work_us(50.0)]);
/// let mut sim = Simulation::new(app.build(), ClusterSpec::xeon_cluster(2, 1), 1);
///
/// for i in 0..100u64 {
///     sim.inject(SimTime::from_millis(i), ep, RequestType(0), 256, i);
/// }
/// sim.run_until_idle();
/// let stats = sim.request_stats(RequestType(0)).unwrap();
/// assert_eq!(stats.completed, 100);
/// assert!(stats.p99() > SimDuration::from_micros(50));
/// ```
#[derive(Debug)]
pub struct Simulation {
    shared: SharedState,
    shards: Vec<Shard>,
    /// The workers=1 driver: one wheel over `(shard, event)` pairs.
    mono: Scheduler<(u16, Ev)>,
    /// Cross-shard messages staged by the current mono handler,
    /// drained into `mono` right after it returns.
    staged: Vec<(u16, u64, u64, Message)>,
    workers: usize,
    /// Pending instance-up transitions: activation time → instances.
    /// Applied between event runs, so shard handlers see instance
    /// states change only at run boundaries (identically under both
    /// drivers).
    control: BTreeMap<u64, Vec<InstanceId>>,
    last_control: u64,
    /// Pending chaos actions from an installed [`ChaosPlan`], applied at
    /// run boundaries exactly like `control` — the placement that makes
    /// fault injection byte-identical across drivers and worker counts.
    chaos: BTreeMap<u64, Vec<ChaosAction>>,
    /// The installed plan, kept as ground truth for detection scorers.
    chaos_plan: Option<ChaosPlan>,
    placer: crate::placement::Placer,
    instance_startup: SimDuration,
    /// Cluster-wide stats/trace views, rebuilt (shard 0, 1, 2, … merge
    /// order, so floating-point sums are bit-stable) after every run.
    merged_stats: Vec<ServiceStats>,
    merged_collector: TraceCollector,
    /// Event count at the last merge — skips rebuilds when nothing ran.
    merged_events: u64,
}

impl Simulation {
    /// Builds a simulation of `app` on `cluster`, seeded deterministically.
    pub fn new(app: AppSpec, cluster: ClusterSpec, seed: u64) -> Self {
        let mut root = Rng::new(seed);
        // All shard collectors share one sampling seed so they reach the
        // same keep/drop verdict for a trace without coordinating.
        let cseed = root.next_u64();
        let machines: Vec<MachineMeta> = cluster
            .machines
            .iter()
            .map(|m| MachineMeta {
                zone: m.zone,
                core: m.core,
                offload: FpgaOffload::disabled(),
                down: false,
            })
            .collect();
        let fabric = Fabric::new(cluster.fabric);
        let lookahead_ns = cluster_lookahead(&fabric, &machines);
        let services: Vec<SharedServiceRt> = app
            .services
            .iter()
            .cloned()
            .map(|spec| SharedServiceRt {
                spec,
                instances: Vec::new(),
                pinned: None,
            })
            .collect();
        let nsvc = services.len();
        let mut shared = SharedState {
            app,
            services,
            insts: Vec::new(),
            machines,
            fabric,
            window: cluster.window,
            cpu_quantum_ns: cluster.cpu_quantum.as_nanos() as f64,
            admit_prob: 1.0,
            ref_core: CoreModel::xeon(),
            sf_cache: Vec::new(),
            ref_ipc_cache: Vec::new(),
            lookahead_ns,
            chaos_net: None,
            chaos_cold: Vec::new(),
        };
        shared.rebuild_core_caches();
        let shard_count = cluster.machines.len() + 1;
        let shards: Vec<Shard> = (0..shard_count)
            .map(|i| {
                let machine = cluster.machines.get(i).map(|m| MachineRt {
                    cores: m.cores,
                    nic: Nic::new(m.nic_gbps),
                    busy: 0,
                    run_queue: VecDeque::with_capacity(16),
                    util: UtilizationTracker::new(cluster.window, m.cores),
                });
                Shard {
                    sched: Scheduler::new(mix64(seed ^ 0xD5B ^ i as u64)),
                    st: ShardState {
                        shard: i as u16,
                        machine,
                        insts: Vec::new(),
                        outstanding: Vec::new(),
                        rr: vec![0; nsvc],
                        invocations: Slab::with_capacity(64),
                        frame_pool: Vec::new(),
                        rng: Rng::new(mix64(seed ^ mix64(0x5EED ^ i as u64))),
                        key_ctr: 0,
                        span_ctr: 0,
                        stats: (0..nsvc)
                            .map(|_| ServiceStats::new(cluster.window))
                            .collect(),
                        collector: TraceCollector::new(
                            cluster.window,
                            cluster.trace_sample_prob,
                            cseed,
                        ),
                        request_stats: Vec::new(),
                        next_req: 0,
                        job_pool: Pool::with_capacity(64),
                        msg_pool: Pool::with_capacity(64),
                        inject_pool: Pool::with_capacity(64),
                    },
                }
            })
            .collect();
        let placer = crate::placement::Placer::new(&cluster, nsvc);
        let mut sim = Simulation {
            shared,
            shards,
            mono: Scheduler::new(seed ^ 0xD5B),
            staged: Vec::new(),
            workers: 1,
            control: BTreeMap::new(),
            last_control: 0,
            chaos: BTreeMap::new(),
            chaos_plan: None,
            placer,
            instance_startup: cluster.instance_startup,
            merged_stats: (0..nsvc)
                .map(|_| ServiceStats::new(cluster.window))
                .collect(),
            merged_collector: TraceCollector::new(cluster.window, cluster.trace_sample_prob, cseed),
            merged_events: 0,
        };
        for sid in 0..nsvc {
            for _ in 0..sim.shared.services[sid].spec.initial_instances {
                sim.spawn_instance(ServiceId(sid as u32), InstanceState::Up);
            }
        }
        sim
    }

    fn spawn_instance(&mut self, service: ServiceId, state: InstanceState) -> InstanceId {
        let machine = self
            .placer
            .place(service, &self.shared.services[service.0 as usize].spec);
        let worker_limit = match &self.shared.services[service.0 as usize].spec.workers {
            WorkerPolicy::Fixed(n) => Some(*n),
            WorkerPolicy::OnDemand { .. } => None,
        };
        let id = InstanceId(self.shared.insts.len() as u32);
        self.shared.insts.push(InstMeta {
            service,
            machine,
            state,
            worker_limit,
        });
        self.shared.services[service.0 as usize].instances.push(id);
        self.shared.chaos_cold.push(0);
        for shard in &mut self.shards {
            shard.st.insts.push(InstRt::default());
            shard.st.outstanding.push(0);
        }
        id
    }

    // -- Drivers -------------------------------------------------------------

    fn run_events(&mut self, until_ns: u64) {
        if self.workers <= 1 {
            self.run_mono(until_ns);
        } else {
            run_epochs(
                &self.shared,
                &mut self.shards,
                self.shared.lookahead_ns,
                until_ns,
                self.workers,
            );
        }
    }

    fn run_mono(&mut self, until_ns: u64) {
        let until = SimTime::from_nanos(until_ns);
        while let Some((shard, ev)) = self.mono.pop_due(until) {
            let now = self.mono.now();
            {
                let st = &mut self.shards[shard as usize].st;
                let mut sink = Sink::Mono {
                    shard,
                    wheel: &mut self.mono,
                    out: &mut self.staged,
                };
                dispatch(st, &self.shared, &mut sink, now, ev);
            }
            if !self.staged.is_empty() {
                self.drain_staged();
            }
        }
    }

    /// Files staged cross-shard messages into the destination shards'
    /// payload pools and the global wheel. The wheel orders by
    /// `(time, key)` regardless of insertion order, so draining right
    /// after each handler matches the parallel driver's barrier-time
    /// absorption exactly.
    fn drain_staged(&mut self) {
        let mut staged = std::mem::take(&mut self.staged);
        for (dst, at, key, msg) in staged.drain(..) {
            let idx = self.shards[dst as usize].st.msg_pool.alloc(msg);
            self.mono
                .schedule_keyed(SimTime::from_nanos(at), key, (dst, Ev::MsgArrive(idx)));
        }
        self.staged = staged;
    }

    fn apply_control(&mut self, tc: u64) {
        if let Some(insts) = self.control.remove(&tc) {
            for id in insts {
                let m = &mut self.shared.insts[id.0 as usize];
                if m.state == InstanceState::Starting {
                    m.state = InstanceState::Up;
                }
            }
            self.last_control = self.last_control.max(tc);
        }
    }

    /// The earliest pending run boundary: instance activations and chaos
    /// actions both pause the event run and apply at a quiesced instant.
    fn next_boundary(&self) -> Option<u64> {
        match (
            self.control.keys().next().copied(),
            self.chaos.keys().next().copied(),
        ) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        }
    }

    // -- Chaos surface -------------------------------------------------------

    /// Installs a fault-injection plan: its expanded schedule is applied
    /// at run boundaries (between event runs), so faults take effect at
    /// quiesced instants — byte-identically under the serial and the
    /// sharded driver at any worker count. Partition timeouts are
    /// clamped up to the cluster lookahead so the epoch engine stays
    /// conservative (the DSB015 floor). The plan is retained as ground
    /// truth, exposed via [`Simulation::chaos_plan`].
    pub fn install_chaos(&mut self, plan: &ChaosPlan) {
        for (t, mut a) in plan.schedule() {
            if let ChaosAction::StartPartition { timeout, .. } = &mut a {
                *timeout =
                    SimDuration::from_nanos(timeout.as_nanos().max(self.shared.lookahead_ns));
            }
            // Boundary 0 would precede the first event run; shift to 1.
            self.chaos.entry(t.as_nanos().max(1)).or_default().push(a);
        }
        self.chaos_plan = Some(plan.clone());
    }

    /// The installed chaos plan (ground truth for detection scoring).
    pub fn chaos_plan(&self) -> Option<&ChaosPlan> {
        self.chaos_plan.as_ref()
    }

    fn apply_chaos(&mut self, tc: u64) {
        let Some(actions) = self.chaos.remove(&tc) else {
            return;
        };
        for a in actions {
            match a {
                ChaosAction::CrashMachine { machine } => self.crash_machine(machine, tc),
                ChaosAction::RestartMachine { machine, cold_for } => {
                    self.restart_machine(machine, tc, cold_for)
                }
                ChaosAction::CrashShard { service, shard } => {
                    if let Some(id) = self.nth_instance(service, shard) {
                        self.crash_instance(id, tc);
                    }
                }
                ChaosAction::RestoreShard {
                    service,
                    shard,
                    cold_for,
                } => {
                    if let Some(id) = self.nth_instance(service, shard) {
                        self.restore_instance(id, tc, cold_for);
                    }
                }
                ChaosAction::StartPartition { a, b, timeout } => {
                    let timeout_ns = timeout.as_nanos().max(self.shared.lookahead_ns);
                    let net = self.net_chaos();
                    net.timeout_ns = timeout_ns;
                    let n = net.n;
                    for &x in &a {
                        for &y in &b {
                            net.cut[x.0 as usize * n + y.0 as usize] = true;
                            net.cut[y.0 as usize * n + x.0 as usize] = true;
                        }
                    }
                }
                ChaosAction::EndPartition { a, b } => {
                    let net = self.net_chaos();
                    let n = net.n;
                    for &x in &a {
                        for &y in &b {
                            net.cut[x.0 as usize * n + y.0 as usize] = false;
                            net.cut[y.0 as usize * n + x.0 as usize] = false;
                        }
                    }
                }
                ChaosAction::StartDegrade { machines, factor } => {
                    let net = self.net_chaos();
                    for m in machines {
                        net.degrade[m.0 as usize] = factor.max(1.0);
                    }
                }
                ChaosAction::EndDegrade { machines } => {
                    let net = self.net_chaos();
                    for m in machines {
                        net.degrade[m.0 as usize] = 1.0;
                    }
                }
            }
        }
        self.last_control = self.last_control.max(tc);
    }

    fn net_chaos(&mut self) -> &mut NetChaos {
        let n = self.shared.machines.len();
        self.shared
            .chaos_net
            .get_or_insert_with(|| Box::new(NetChaos::new(n)))
    }

    /// The `shard`-th instance of a service (chaos plans address cache
    /// shards by index so they stay valid across placement changes).
    fn nth_instance(&self, service: ServiceId, shard: u32) -> Option<InstanceId> {
        self.shared.services[service.0 as usize]
            .instances
            .get(shard as usize)
            .copied()
    }

    fn crash_machine(&mut self, m: MachineId, tc: u64) {
        if self.shared.machines[m.0 as usize].down {
            return;
        }
        self.shared.machines[m.0 as usize].down = true;
        let victims: Vec<InstanceId> = self
            .shared
            .insts
            .iter()
            .enumerate()
            .filter(|(_, meta)| meta.machine == m && meta.state != InstanceState::Down)
            .map(|(i, _)| InstanceId(i as u32))
            .collect();
        for id in &victims {
            self.shared.insts[id.0 as usize].state = InstanceState::Down;
        }
        self.kill_shard_work(m.0 as usize, &victims, tc);
    }

    fn restart_machine(&mut self, m: MachineId, tc: u64, cold_for: SimDuration) {
        if !self.shared.machines[m.0 as usize].down {
            return;
        }
        self.shared.machines[m.0 as usize].down = false;
        let cold_until = tc.saturating_add(cold_for.as_nanos());
        for i in 0..self.shared.insts.len() {
            let meta = &mut self.shared.insts[i];
            if meta.machine == m && meta.state == InstanceState::Down {
                meta.state = InstanceState::Up;
                self.shared.chaos_cold[i] = cold_until;
                self.reset_inst_rt(m.0 as usize, InstanceId(i as u32));
            }
        }
    }

    fn crash_instance(&mut self, id: InstanceId, tc: u64) {
        let meta = self.shared.insts[id.0 as usize];
        if meta.state == InstanceState::Down {
            return;
        }
        self.shared.insts[id.0 as usize].state = InstanceState::Down;
        self.kill_shard_work(meta.machine.0 as usize, &[id], tc);
    }

    fn restore_instance(&mut self, id: InstanceId, tc: u64, cold_for: SimDuration) {
        let meta = self.shared.insts[id.0 as usize];
        if meta.state != InstanceState::Down {
            return;
        }
        self.shared.insts[id.0 as usize].state = InstanceState::Up;
        self.shared.chaos_cold[id.0 as usize] = tc.saturating_add(cold_for.as_nanos());
        self.reset_inst_rt(meta.machine.0 as usize, id);
    }

    fn reset_inst_rt(&mut self, shard: usize, id: InstanceId) {
        let rt = &mut self.shards[shard].st.insts[id.0 as usize];
        debug_assert!(rt.queue.is_empty(), "queue drained at crash time");
        rt.busy_workers = 0;
        rt.warm_free = 0;
        rt.inflight = 0;
        rt.conns.clear();
    }

    /// Fails every in-flight invocation and queued request of the victim
    /// instances on `shard`, notifying each caller (or the client) with
    /// an error after the conservative lookahead delay. Events already
    /// in the wheels referencing the dead work resolve safely against
    /// the generational slab; core jobs mid-execution run out on their
    /// own (work the dying host had already started).
    fn kill_shard_work(&mut self, shard: usize, victims: &[InstanceId], tc: u64) {
        let at_ns = tc.saturating_add(self.shared.lookahead_ns);
        let is_victim = |inst: InstanceId| victims.iter().any(|v| *v == inst);
        // In-flight invocations (slab order is deterministic per shard).
        let keys: Vec<SlabKey> = self.shards[shard]
            .st
            .invocations
            .iter()
            .filter(|(_, inv)| is_victim(inv.instance))
            .map(|(k, _)| k)
            .collect();
        for k in keys {
            let inv = self.shards[shard]
                .st
                .invocations
                .remove(k)
                .expect("collected live key");
            let msg = match inv.caller {
                Some(c) => Message::Response(ResponseMsg {
                    to_inv: c.inv,
                    to_machine: c.machine,
                    from_inst: inv.instance,
                    bytes: 1,
                    protocol: self.shared.services[inv.service.0 as usize].spec.protocol,
                    failed: true,
                }),
                None => Message::ClientReply {
                    rtype: inv.rtype,
                    spawn: inv.spawn,
                    inst: inv.instance,
                    failed: true,
                },
            };
            self.post_boundary_msg(shard, at_ns, msg);
        }
        // Queued (not yet started) requests, then reset the runtimes.
        for &id in victims {
            let queued: Vec<PendingReq> = self.shards[shard].st.insts[id.0 as usize]
                .queue
                .drain(..)
                .collect();
            for p in queued {
                let msg = match p.msg.caller {
                    Some(c) => Message::Response(ResponseMsg {
                        to_inv: c.inv,
                        to_machine: c.machine,
                        from_inst: id,
                        bytes: 1,
                        protocol: self.shared.services
                            [self.shared.insts[id.0 as usize].service.0 as usize]
                            .spec
                            .protocol,
                        failed: true,
                    }),
                    None => Message::ClientReply {
                        rtype: p.msg.rtype,
                        spawn: p.msg.spawn,
                        inst: id,
                        failed: true,
                    },
                };
                self.post_boundary_msg(shard, at_ns, msg);
            }
            self.reset_inst_rt(shard, id);
        }
    }

    /// Delivers a boundary-time failure notice into the destination
    /// shard's queue, keyed from the *sending* shard's counter — the
    /// same identity rule event handlers follow, so both drivers order
    /// the notices identically.
    fn post_boundary_msg(&mut self, from: usize, at_ns: u64, msg: Message) {
        let dst = match &msg {
            Message::Request(rm) => self.shared.insts[rm.dst.0 as usize].machine.0 as usize,
            Message::Response(r) => r.to_machine.0 as usize,
            Message::ClientReply { .. } => self.shards.len() - 1,
        };
        let key = self.shards[from].st.mint();
        let idx = self.shards[dst].st.msg_pool.alloc(msg);
        let at = SimTime::from_nanos(at_ns);
        if self.workers <= 1 {
            self.mono
                .schedule_keyed(at, key, (dst as u16, Ev::MsgArrive(idx)));
        } else {
            self.shards[dst]
                .sched
                .schedule_keyed(at, key, Ev::MsgArrive(idx));
        }
    }

    // -- Run control ---------------------------------------------------------

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        let mut t = self.mono.now().as_nanos().max(self.last_control);
        for s in &self.shards {
            t = t.max(s.sched.now().as_nanos());
        }
        SimTime::from_nanos(t)
    }

    /// Total events processed (summed across shards).
    pub fn events_processed(&self) -> u64 {
        self.mono.events_processed()
            + self
                .shards
                .iter()
                .map(|s| s.sched.events_processed())
                .sum::<u64>()
    }

    /// Events still pending across all shards.
    pub fn pending(&self) -> usize {
        self.mono.pending() + self.shards.iter().map(|s| s.sched.pending()).sum::<usize>()
    }

    /// Runs until all pending events (including in-flight requests) drain.
    pub fn run_until_idle(&mut self) {
        while let Some(tc) = self.next_boundary() {
            self.run_events(tc.saturating_sub(1));
            self.apply_control(tc);
            self.apply_chaos(tc);
        }
        self.run_events(u64::MAX);
        self.refresh_merged();
    }

    /// Runs the simulation up to the given virtual time, then returns so a
    /// controller (autoscaler, workload generator) can act.
    pub fn advance_to(&mut self, t: SimTime) {
        let t_ns = t.as_nanos();
        while let Some(tc) = self.next_boundary() {
            if tc > t_ns {
                break;
            }
            self.run_events(tc.saturating_sub(1));
            self.apply_control(tc);
            self.apply_chaos(tc);
        }
        self.run_events(t_ns);
        self.refresh_merged();
    }

    /// Sets the number of worker threads used by subsequent runs. `1`
    /// (the default) selects the serial driver; higher counts run the
    /// epoch-synchronized parallel driver — with byte-identical results.
    ///
    /// # Panics
    ///
    /// Panics if events are pending: the two drivers keep their queues
    /// in different wheels, so the switch must happen at a quiescent
    /// point (construction time, or after `run_until_idle`).
    pub fn set_workers(&mut self, n: usize) {
        assert!(
            self.pending() == 0,
            "set_workers requires a drained event queue"
        );
        self.workers = n.max(1);
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The conservative cross-shard lookahead bound, in nanoseconds:
    /// the parallel driver's epoch window width.
    pub fn lookahead_ns(&self) -> u64 {
        self.shared.lookahead_ns
    }

    /// Schedules one client request at `at` from the default client zone.
    pub fn inject(
        &mut self,
        at: SimTime,
        entry: EndpointRef,
        rtype: RequestType,
        bytes: u64,
        partition_key: u64,
    ) {
        self.inject_from(at, entry, rtype, bytes, partition_key, Zone::Client);
    }

    /// Schedules one request at `at`, originating from `origin` (e.g.
    /// [`Zone::Edge`] for sensor-generated traffic).
    pub fn inject_from(
        &mut self,
        at: SimTime,
        entry: EndpointRef,
        rtype: RequestType,
        bytes: u64,
        partition_key: u64,
        origin: Zone,
    ) {
        // Clamp into the present so both drivers see the same arrival
        // (each wheel would otherwise clamp against its own clock).
        let at = at.max(self.now());
        let cs = self.shards.len() - 1;
        let (id, key) = {
            let st = &mut self.shards[cs].st;
            let id = st.inject_pool.alloc(InjectReq {
                entry,
                rtype,
                bytes,
                partition_key,
                origin,
            });
            (id, st.mint())
        };
        if self.workers <= 1 {
            self.mono
                .schedule_keyed(at, key, (cs as u16, Ev::Inject(id)));
        } else {
            self.shards[cs]
                .sched
                .schedule_keyed(at, key, Ev::Inject(id));
        }
    }

    // -- Merged views --------------------------------------------------------

    fn refresh_merged(&mut self) {
        let ev = self.events_processed();
        if ev == self.merged_events {
            return;
        }
        self.merged_events = ev;
        let nsvc = self.shared.services.len();
        self.merged_stats.clear();
        for sid in 0..nsvc {
            let mut s = self.shards[0].st.stats[sid].clone();
            for shard in &self.shards[1..] {
                s.merge(&shard.st.stats[sid]);
            }
            self.merged_stats.push(s);
        }
        let mut col = self.shards[0].st.collector.clone();
        for shard in &self.shards[1..] {
            col.merge_from(&shard.st.collector);
        }
        self.merged_collector = col;
    }

    /// The application being simulated.
    pub fn app(&self) -> &AppSpec {
        &self.shared.app
    }

    /// End-to-end statistics for a request type (None if never injected).
    pub fn request_stats(&self, rtype: RequestType) -> Option<&RequestStats> {
        self.shards
            .last()
            .expect("client shard always exists")
            .st
            .request_stats
            .get(rtype.0 as usize)
    }

    /// Execution statistics for a service, merged across shards.
    pub fn service_stats(&self, service: ServiceId) -> &ServiceStats {
        &self.merged_stats[service.0 as usize]
    }

    /// The distributed-tracing collector (merged across shards).
    pub fn collector(&self) -> &TraceCollector {
        &self.merged_collector
    }

    /// Number of `Up` instances of a service.
    pub fn instance_count(&self, service: ServiceId) -> usize {
        self.shared.services[service.0 as usize]
            .instances
            .iter()
            .filter(|i| self.shared.insts[i.0 as usize].state == InstanceState::Up)
            .count()
    }

    fn inst_rt(&self, id: InstanceId) -> &InstRt {
        let owner = self.shared.insts[id.0 as usize].machine.0 as usize;
        &self.shards[owner].st.insts[id.0 as usize]
    }

    /// Instantaneous worker occupancy of a service in `[0, 1]`: busy
    /// workers over total fixed workers across `Up` instances. This is the
    /// signal a utilization-driven autoscaler sees — and it counts workers
    /// blocked on downstream calls as busy, which is exactly the misleading
    /// behaviour of Figs. 17/19/20. On-demand (serverless) services report
    /// 0 (they scale themselves).
    pub fn occupancy(&self, service: ServiceId) -> f64 {
        let mut busy = 0u64;
        let mut cap = 0u64;
        for id in &self.shared.services[service.0 as usize].instances {
            let meta = &self.shared.insts[id.0 as usize];
            if meta.state != InstanceState::Up {
                continue;
            }
            if let Some(limit) = meta.worker_limit {
                busy += self.inst_rt(*id).busy_workers as u64;
                cap += limit as u64;
            }
        }
        if cap == 0 {
            0.0
        } else {
            busy as f64 / cap as f64
        }
    }

    /// Total queued + running invocations across a service's instances.
    pub fn service_inflight(&self, service: ServiceId) -> u64 {
        self.shared.services[service.0 as usize]
            .instances
            .iter()
            .map(|i| self.inst_rt(*i).inflight as u64)
            .sum()
    }

    /// Mean core utilization of machine `m` in window `w`.
    pub fn machine_utilization(&self, m: MachineId, w: usize) -> f64 {
        self.shards[m.0 as usize]
            .st
            .machine
            .as_ref()
            .expect("machine shard")
            .util
            .utilization(w)
    }

    /// Number of machines in the cluster.
    pub fn machine_count(&self) -> usize {
        self.shared.machines.len()
    }

    // -- Telemetry hooks -----------------------------------------------------
    //
    // Read-only snapshot getters polled by `dsb-telemetry`'s scraper at a
    // fixed sim-time interval. None of them touch the RNG or the event
    // queue, so attaching telemetry cannot perturb a run: goldens stay
    // byte-identical with or without a scraper.

    /// Requests waiting in worker queues across a service's `Up` and
    /// `Draining` instances — queued only, excluding the ones running.
    pub fn service_queue_depth(&self, service: ServiceId) -> u64 {
        self.shared.services[service.0 as usize]
            .instances
            .iter()
            .map(|i| self.inst_rt(*i).queue.len() as u64)
            .sum()
    }

    /// Aggregated connection-pool state held by `from`'s instances toward
    /// `target`, or `None` if no such pool has been opened yet.
    pub fn conn_pool(&self, from: ServiceId, target: ServiceId) -> Option<ConnPoolSnapshot> {
        let mut snap = ConnPoolSnapshot::default();
        let mut any = false;
        for id in &self.shared.services[from.0 as usize].instances {
            if let Some(pool) = self.inst_rt(*id).conns.get(&target) {
                any = true;
                snap.in_use += pool.in_use as u64;
                snap.limit += pool.limit as u64;
                snap.waiters += pool.waiters.len() as u64;
            }
        }
        any.then_some(snap)
    }

    /// Downstream services toward which `service`'s instances currently
    /// hold connection pools, in stable id order.
    pub fn conn_pool_targets(&self, service: ServiceId) -> Vec<ServiceId> {
        let mut targets: Vec<ServiceId> = Vec::new();
        for id in &self.shared.services[service.0 as usize].instances {
            for &t in self.inst_rt(*id).conns.keys() {
                if !targets.contains(&t) {
                    targets.push(t);
                }
            }
        }
        targets.sort_unstable_by_key(|t| t.0);
        targets
    }

    /// Cores of machine `m` currently executing jobs.
    pub fn machine_busy_cores(&self, m: MachineId) -> u32 {
        self.shards[m.0 as usize]
            .st
            .machine
            .as_ref()
            .expect("machine shard")
            .busy
    }

    /// Total cores of machine `m`.
    pub fn machine_cores(&self, m: MachineId) -> u32 {
        self.shards[m.0 as usize]
            .st
            .machine
            .as_ref()
            .expect("machine shard")
            .cores
    }

    /// Jobs waiting in machine `m`'s run queue (preempted or not yet
    /// scheduled onto a core).
    pub fn machine_run_queue(&self, m: MachineId) -> usize {
        self.shards[m.0 as usize]
            .st
            .machine
            .as_ref()
            .expect("machine shard")
            .run_queue
            .len()
    }

    /// Instances currently `Down` due to chaos faults (0 without a plan).
    pub fn instances_down(&self) -> u64 {
        self.shared
            .insts
            .iter()
            .filter(|m| m.state == InstanceState::Down)
            .count() as u64
    }

    /// Machines currently crashed by chaos faults.
    pub fn machines_down(&self) -> u64 {
        self.shared.machines.iter().filter(|m| m.down).count() as u64
    }

    /// Unordered machine pairs currently cut by an active partition.
    pub fn partition_edges(&self) -> u64 {
        let Some(net) = self.shared.chaos_net.as_deref() else {
            return 0;
        };
        let mut edges = 0;
        for a in 0..net.n {
            for b in (a + 1)..net.n {
                if net.is_cut(a, b) {
                    edges += 1;
                }
            }
        }
        edges
    }

    /// Machines whose NIC is currently degraded (delay multiplier > 1).
    pub fn degraded_machines(&self) -> u64 {
        self.shared.chaos_net.as_deref().map_or(0, |net| {
            net.degrade.iter().filter(|f| **f > 1.0).count() as u64
        })
    }

    /// Number of request-type slots with statistics so far (indexable via
    /// [`Simulation::request_stats`]).
    pub fn request_type_count(&self) -> usize {
        self.shards
            .last()
            .expect("client shard always exists")
            .st
            .request_stats
            .len()
    }

    // -- Control surface -----------------------------------------------------

    /// Starts a new instance; it joins rotation after the configured
    /// startup delay. Returns its id.
    pub fn add_instance(&mut self, service: ServiceId) -> InstanceId {
        let id = self.spawn_instance(service, InstanceState::Starting);
        let at = self
            .now()
            .as_nanos()
            .saturating_add(self.instance_startup.as_nanos());
        self.control.entry(at).or_default().push(id);
        id
    }

    /// Starts a new instance that is immediately up (for initial
    /// provisioning before the run).
    pub fn add_instance_now(&mut self, service: ServiceId) -> InstanceId {
        self.spawn_instance(service, InstanceState::Up)
    }

    /// Removes an instance from rotation (it drains its queue).
    ///
    /// # Panics
    ///
    /// Panics if this would leave the service with no `Up` instance.
    pub fn retire_instance(&mut self, inst: InstanceId) {
        let service = self.shared.insts[inst.0 as usize].service;
        let ups = self.instance_count(service);
        assert!(ups > 1, "cannot retire the last instance");
        self.shared.insts[inst.0 as usize].state = InstanceState::Draining;
    }

    /// The instance ids of a service (for targeted retirement).
    pub fn instances_of(&self, service: ServiceId) -> Vec<InstanceId> {
        self.shared.services[service.0 as usize].instances.clone()
    }

    /// Completed invocations served by one instance — the per-shard load
    /// split for `Partition` services.
    pub fn instance_served(&self, inst: InstanceId) -> u64 {
        self.inst_rt(inst).served
    }

    /// Sets the operating frequency of one machine (RAPL / slow server).
    pub fn set_frequency(&mut self, m: MachineId, ghz: f64) {
        let core = self.shared.machines[m.0 as usize].core;
        self.shared.machines[m.0 as usize].core = core.at_frequency(ghz);
        self.shared.rebuild_core_caches();
    }

    /// Sets the operating frequency of every machine.
    pub fn set_all_frequencies(&mut self, ghz: f64) {
        for i in 0..self.shared.machines.len() {
            self.set_frequency(MachineId(i as u32), ghz);
        }
    }

    /// Installs (or removes) the FPGA RPC accelerator on every machine.
    pub fn set_offload(&mut self, offload: FpgaOffload) {
        for m in &mut self.shared.machines {
            m.offload = offload;
        }
    }

    /// Routes *all* traffic for a service to one instance (models the
    /// Fig. 22a switch misconfiguration). `None` restores load balancing.
    pub fn pin_service(&mut self, service: ServiceId, to: Option<InstanceId>) {
        self.shared.services[service.0 as usize].pinned = to;
    }

    /// Admission probability for new requests (rate limiting; 1.0 = all).
    pub fn set_admission(&mut self, prob: f64) {
        self.shared.admit_prob = prob.clamp(0.0, 1.0);
    }

    /// Changes the load-balancing policy of a service at runtime (e.g.
    /// to model sticky sessions / per-user data affinity).
    pub fn set_lb_policy(&mut self, service: ServiceId, lb: LbPolicy) {
        self.shared.services[service.0 as usize].spec.lb = lb;
    }

    /// Changes the connection limit callers enforce toward `service`
    /// (applies to existing pools too).
    pub fn set_conn_limit(&mut self, service: ServiceId, limit: u32) {
        self.shared.services[service.0 as usize].spec.conn_limit = limit.max(1);
        for shard in &mut self.shards {
            for inst in &mut shard.st.insts {
                if let Some(pool) = inst.conns.get_mut(&service) {
                    pool.limit = limit.max(1);
                }
            }
        }
    }

    /// The machine the placement layer assigned to an instance.
    pub fn instance_machine(&self, inst: InstanceId) -> MachineId {
        self.shared.insts[inst.0 as usize].machine
    }

    /// The zone a service's first instance runs in (placement inspection).
    pub fn service_zone(&self, service: ServiceId) -> Option<Zone> {
        self.shared.services[service.0 as usize]
            .instances
            .first()
            .map(|i| {
                let m = self.shared.insts[i.0 as usize].machine;
                self.shared.machines[m.0 as usize].zone
            })
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::AppBuilder;
    use dsb_simcore::Dist;

    fn one_service_app(workers: u32, blocking: bool) -> (AppSpec, EndpointRef) {
        let mut app = AppBuilder::new("t");
        let mut b = app.service("svc").workers(workers);
        if !blocking {
            b = b.event_driven();
        }
        let svc = b.build();
        let ep = app.endpoint(
            svc,
            "op",
            Dist::constant(256.0),
            vec![Step::Compute {
                ns: Dist::constant(100_000.0),
                domain: ExecDomain::User,
            }],
        );
        (app.build(), ep)
    }

    fn small_cluster() -> ClusterSpec {
        ClusterSpec::xeon_cluster(2, 1)
    }

    #[test]
    fn request_completes_with_plausible_latency() {
        let (app, ep) = one_service_app(4, true);
        let mut sim = Simulation::new(app, small_cluster(), 7);
        sim.inject(SimTime::ZERO, ep, RequestType(0), 128, 1);
        sim.run_until_idle();
        let st = sim.request_stats(RequestType(0)).unwrap();
        assert_eq!(st.completed, 1);
        let lat = st.latency.quantile(1.0);
        // 100us compute + 2x client hops (~120us each) + processing.
        assert!(lat > 300_000, "latency {lat}ns too small");
        assert!(lat < 2_000_000, "latency {lat}ns too large");
    }

    #[test]
    fn two_tier_call_chain_works() {
        let mut app = AppBuilder::new("chain");
        let back = app.service("back").workers(8).build();
        let get = app.endpoint(
            back,
            "get",
            Dist::constant(512.0),
            vec![Step::work_us(20.0)],
        );
        let front = app.service("front").workers(8).build();
        let root = app.endpoint(
            front,
            "root",
            Dist::constant(1024.0),
            vec![Step::work_us(10.0), Step::call(get, 128.0)],
        );
        let mut sim = Simulation::new(app.build(), small_cluster(), 3);
        for i in 0..50 {
            sim.inject(SimTime::from_millis(i), root, RequestType(0), 256, i);
        }
        sim.run_until_idle();
        assert_eq!(sim.request_stats(RequestType(0)).unwrap().completed, 50);
        // Both services saw invocations and accumulated stats.
        assert_eq!(sim.service_stats(front).invocations, 50);
        assert_eq!(sim.service_stats(back).invocations, 50);
        assert!(sim.service_stats(back).total_time_ns() > 0.0);
        // Network processing time was charged to the kernel domain.
        assert!(sim.service_stats(front).time_ns[ExecDomain::Kernel.index()] > 0.0);
    }

    #[test]
    fn worker_limit_queues_requests() {
        // 1 blocking worker, 100us compute each: 10 simultaneous requests
        // must serialize -> last latency ~ 10x first.
        let (app, ep) = one_service_app(1, true);
        let mut sim = Simulation::new(app, small_cluster(), 1);
        for i in 0..10 {
            sim.inject(SimTime::ZERO, ep, RequestType(0), 128, i);
        }
        sim.run_until_idle();
        let st = sim.request_stats(RequestType(0)).unwrap();
        assert_eq!(st.completed, 10);
        let min = st.latency.min();
        let max = st.latency.max();
        assert!(
            max > min + 800_000,
            "expected serialization: min {min} max {max}"
        );
    }

    #[test]
    fn parallel_fanout_joins() {
        let mut app = AppBuilder::new("fan");
        let leaf = app.service("leaf").workers(64).build();
        let get = app.endpoint(
            leaf,
            "get",
            Dist::constant(128.0),
            vec![Step::work_us(30.0)],
        );
        let front = app.service("front").workers(8).build();
        let root = app.endpoint(
            front,
            "root",
            Dist::constant(512.0),
            vec![Step::FanCall {
                target: get,
                req_bytes: Dist::constant(64.0),
                n: Dist::constant(8.0),
            }],
        );
        let mut sim = Simulation::new(app.build(), small_cluster(), 5);
        sim.inject(SimTime::ZERO, root, RequestType(0), 128, 1);
        sim.run_until_idle();
        assert_eq!(sim.request_stats(RequestType(0)).unwrap().completed, 1);
        assert_eq!(sim.service_stats(leaf).invocations, 8);
        // Parallel: total latency far below 8 sequential round trips.
        let lat = sim.request_stats(RequestType(0)).unwrap().latency.max();
        assert!(lat < 8 * 150_000, "fan-out not parallel: {lat}ns");
    }

    #[test]
    fn zero_fanout_skips_calls() {
        let mut app = AppBuilder::new("fan0");
        let leaf = app.service("leaf").workers(4).build();
        let get = app.endpoint(leaf, "get", Dist::constant(128.0), vec![]);
        let front = app.service("front").workers(4).build();
        let root = app.endpoint(
            front,
            "root",
            Dist::constant(128.0),
            vec![
                Step::FanCall {
                    target: get,
                    req_bytes: Dist::constant(64.0),
                    n: Dist::constant(0.0),
                },
                Step::work_us(5.0),
            ],
        );
        let mut sim = Simulation::new(app.build(), small_cluster(), 5);
        sim.inject(SimTime::ZERO, root, RequestType(0), 128, 1);
        sim.run_until_idle();
        assert_eq!(sim.request_stats(RequestType(0)).unwrap().completed, 1);
        assert_eq!(sim.service_stats(leaf).invocations, 0);
    }

    #[test]
    fn branch_probability_respected() {
        let mut app = AppBuilder::new("br");
        let a = app.service("a").workers(16).build();
        let hit = app.endpoint(a, "hit", Dist::constant(64.0), vec![]);
        let b = app.service("b").workers(16).build();
        let miss = app.endpoint(b, "miss", Dist::constant(64.0), vec![]);
        let front = app.service("front").workers(64).build();
        let root = app.endpoint(
            front,
            "root",
            Dist::constant(64.0),
            vec![Step::Branch {
                p: 0.8,
                then: Arc::new(vec![Step::call(hit, 64.0)]),
                els: Arc::new(vec![Step::call(miss, 64.0)]),
            }],
        );
        let mut sim = Simulation::new(app.build(), small_cluster(), 11);
        for i in 0..1000 {
            sim.inject(SimTime::from_micros(i * 500), root, RequestType(0), 64, i);
        }
        sim.run_until_idle();
        let hits = sim.service_stats(a).invocations;
        let misses = sim.service_stats(b).invocations;
        assert_eq!(hits + misses, 1000);
        assert!((700..900).contains(&hits), "hits {hits}");
    }

    #[test]
    fn blocking_connection_pool_limits_concurrency() {
        // Front (blocking, many workers) -> back over HTTP/1 with
        // conn_limit 1 and slow 1ms handler: calls serialize even though
        // back has plenty of workers.
        let mut app = AppBuilder::new("conn");
        let back = app
            .service("back")
            .workers(32)
            .protocol(Protocol::Http1)
            .conn_limit(1)
            .build();
        let get = app.endpoint(
            back,
            "get",
            Dist::constant(128.0),
            vec![Step::Compute {
                ns: Dist::constant(1_000_000.0),
                domain: ExecDomain::User,
            }],
        );
        let front = app.service("front").workers(32).instances(1).build();
        let root = app.endpoint(
            front,
            "root",
            Dist::constant(128.0),
            vec![Step::call(get, 64.0)],
        );
        let mut sim = Simulation::new(app.build(), small_cluster(), 2);
        for i in 0..8 {
            sim.inject(SimTime::ZERO, root, RequestType(0), 64, i);
        }
        sim.run_until_idle();
        let st = sim.request_stats(RequestType(0)).unwrap();
        assert_eq!(st.completed, 8);
        // Serialized over one connection: ~8ms of back-end compute total.
        assert!(
            st.latency.max() > 7_000_000,
            "expected head-of-line blocking, max {}",
            st.latency.max()
        );
    }

    #[test]
    fn occupancy_reflects_blocked_workers() {
        // Blocking front waiting on a slow back-end counts as busy.
        let mut app = AppBuilder::new("occ");
        let back = app.service("back").workers(1).build();
        let get = app.endpoint(
            back,
            "get",
            Dist::constant(128.0),
            vec![Step::Io {
                ns: Dist::constant(1e9), // 1s io
            }],
        );
        let front = app.service("front").workers(4).build();
        let root = app.endpoint(
            front,
            "root",
            Dist::constant(128.0),
            vec![Step::call(get, 64.0)],
        );
        let mut sim = Simulation::new(app.build(), small_cluster(), 2);
        for i in 0..4 {
            sim.inject(SimTime::ZERO, root, RequestType(0), 64, i);
        }
        sim.advance_to(SimTime::from_millis(500));
        assert!(
            sim.occupancy(front) >= 0.99,
            "front occupancy {}",
            sim.occupancy(front)
        );
        sim.run_until_idle();
        assert_eq!(sim.occupancy(front), 0.0);
    }

    #[test]
    fn on_demand_workers_cold_start_then_serve() {
        let mut app = AppBuilder::new("svc-less");
        let f = app
            .service("fn")
            .on_demand_workers(Dist::constant(100_000_000.0)) // 100ms cold
            .build();
        let ep = app.endpoint(f, "run", Dist::constant(128.0), vec![Step::work_us(10.0)]);
        let mut sim = Simulation::new(app.build(), small_cluster(), 4);
        sim.inject(SimTime::ZERO, ep, RequestType(0), 64, 1);
        // Second request arrives after the first finished: warm start.
        sim.inject(SimTime::from_millis(500), ep, RequestType(0), 64, 2);
        sim.run_until_idle();
        let st = sim.request_stats(RequestType(0)).unwrap();
        assert_eq!(st.completed, 2);
        let cold = st.latency.max();
        let warm = st.latency.min();
        assert!(cold > 100_000_000, "cold {cold}");
        assert!(warm < 5_000_000, "warm {warm}");
    }

    #[test]
    fn pinning_routes_all_traffic_to_one_instance() {
        let mut app = AppBuilder::new("pin");
        let svc = app.service("s").workers(4).instances(4).build();
        let ep = app.endpoint(svc, "op", Dist::constant(64.0), vec![Step::work_us(5.0)]);
        let mut sim = Simulation::new(app.build(), ClusterSpec::xeon_cluster(4, 1), 9);
        let victim = sim.instances_of(svc)[0];
        sim.pin_service(svc, Some(victim));
        for i in 0..40 {
            sim.inject(SimTime::from_micros(i * 100), ep, RequestType(0), 64, i);
        }
        sim.run_until_idle();
        assert_eq!(sim.request_stats(RequestType(0)).unwrap().completed, 40);
        // Unpin and confirm spread resumes (no panic, work completes).
        sim.pin_service(svc, None);
        for i in 0..40 {
            sim.inject(
                sim.now() + SimDuration::from_micros(i * 100),
                ep,
                RequestType(0),
                64,
                i,
            );
        }
        sim.run_until_idle();
        assert_eq!(sim.request_stats(RequestType(0)).unwrap().completed, 80);
    }

    #[test]
    fn frequency_scaling_slows_completion() {
        let (app, ep) = one_service_app(4, true);
        let run = |ghz: f64| {
            let (app2, _) = one_service_app(4, true);
            let _ = app2;
            let mut sim = Simulation::new(
                {
                    let (a, _) = one_service_app(4, true);
                    a
                },
                small_cluster(),
                1,
            );
            sim.set_all_frequencies(ghz);
            sim.inject(SimTime::ZERO, ep, RequestType(0), 64, 1);
            sim.run_until_idle();
            sim.request_stats(RequestType(0)).unwrap().latency.max()
        };
        let _ = app;
        let fast = run(2.4);
        let slow = run(1.0);
        assert!(
            slow as f64 > fast as f64 * 1.2,
            "slow {slow} vs fast {fast}"
        );
    }

    #[test]
    fn add_instance_joins_after_startup_delay() {
        let mut app = AppBuilder::new("scale");
        let svc = app.service("s").workers(2).build();
        let ep = app.endpoint(svc, "op", Dist::constant(64.0), vec![Step::work_us(10.0)]);
        let mut sim = Simulation::new(app.build(), small_cluster(), 6);
        assert_eq!(sim.instance_count(svc), 1);
        sim.add_instance(svc);
        assert_eq!(sim.instance_count(svc), 1); // still starting
        sim.advance_to(SimTime::from_secs(10));
        assert_eq!(sim.instance_count(svc), 2);
        sim.inject(sim.now(), ep, RequestType(0), 64, 1);
        sim.run_until_idle();
        assert_eq!(sim.request_stats(RequestType(0)).unwrap().completed, 1);
    }

    #[test]
    fn retire_instance_drains() {
        let mut app = AppBuilder::new("ret");
        let svc = app.service("s").workers(2).instances(2).build();
        let ep = app.endpoint(svc, "op", Dist::constant(64.0), vec![Step::work_us(10.0)]);
        let mut sim = Simulation::new(app.build(), small_cluster(), 6);
        let insts = sim.instances_of(svc);
        sim.retire_instance(insts[0]);
        assert_eq!(sim.instance_count(svc), 1);
        for i in 0..20 {
            sim.inject(SimTime::from_micros(i), ep, RequestType(0), 64, i);
        }
        sim.run_until_idle();
        assert_eq!(sim.request_stats(RequestType(0)).unwrap().completed, 20);
    }

    #[test]
    #[should_panic(expected = "cannot retire the last instance")]
    fn retiring_last_instance_panics() {
        let mut app = AppBuilder::new("ret2");
        let svc = app.service("s").build();
        app.endpoint(svc, "op", Dist::constant(64.0), vec![]);
        let mut sim = Simulation::new(app.build(), small_cluster(), 6);
        let insts = sim.instances_of(svc);
        sim.retire_instance(insts[0]);
    }

    #[test]
    fn admission_control_rejects() {
        let (app, ep) = one_service_app(8, true);
        let mut sim = Simulation::new(app, small_cluster(), 8);
        sim.set_admission(0.0);
        for i in 0..10 {
            sim.inject(SimTime::from_micros(i), ep, RequestType(0), 64, i);
        }
        sim.run_until_idle();
        let st = sim.request_stats(RequestType(0)).unwrap();
        assert_eq!(st.issued, 10);
        assert_eq!(st.rejected, 10);
        assert_eq!(st.completed, 0);
    }

    #[test]
    fn spans_reach_collector_with_parents() {
        let mut app = AppBuilder::new("tr");
        let back = app.service("back").workers(4).build();
        let get = app.endpoint(back, "get", Dist::constant(64.0), vec![Step::work_us(5.0)]);
        let front = app.service("front").workers(4).build();
        let root = app.endpoint(
            front,
            "root",
            Dist::constant(64.0),
            vec![Step::call(get, 64.0)],
        );
        let mut app_spec = app.build();
        let _ = &mut app_spec;
        let mut cluster = small_cluster();
        cluster.trace_sample_prob = 1.0;
        let mut sim = Simulation::new(app_spec, cluster, 12);
        sim.inject(SimTime::ZERO, root, RequestType(0), 64, 1);
        sim.run_until_idle();
        let traces: Vec<_> = sim.collector().sampled_traces().collect();
        assert_eq!(traces.len(), 1);
        let spans = traces[0].1;
        assert_eq!(spans.len(), 2);
        let root_span = spans.iter().find(|s| s.parent.is_none()).unwrap();
        let child = spans.iter().find(|s| s.parent.is_some()).unwrap();
        assert_eq!(child.parent, Some(root_span.id));
        assert_eq!(root_span.service, front.0);
        assert_eq!(child.service, back.0);
        assert!(child.start >= root_span.start);
        assert!(child.end <= root_span.end);
    }

    #[test]
    fn determinism_same_seed_same_results() {
        let run = |seed| {
            let (app, ep) = one_service_app(4, true);
            let mut sim = Simulation::new(app, small_cluster(), seed);
            for i in 0..200 {
                sim.inject(SimTime::from_micros(i * 50), ep, RequestType(0), 64, i);
            }
            sim.run_until_idle();
            let st = sim.request_stats(RequestType(0)).unwrap();
            (
                st.latency.mean(),
                st.latency.quantile(0.99),
                sim.events_processed(),
            )
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn partition_lb_concentrates_hot_keys() {
        let mut app = AppBuilder::new("shard");
        let svc = app
            .service("s")
            .workers(1)
            .instances(4)
            .lb(LbPolicy::Partition)
            .build();
        let ep = app.endpoint(
            svc,
            "op",
            Dist::constant(64.0),
            vec![Step::Compute {
                ns: Dist::constant(200_000.0),
                domain: ExecDomain::User,
            }],
        );
        let mut sim = Simulation::new(app.build(), ClusterSpec::xeon_cluster(4, 1), 10);
        // All requests share one key -> one shard serializes them.
        for i in 0..20 {
            sim.inject(SimTime::ZERO, ep, RequestType(0), 64, 777);
            let _ = i;
        }
        sim.run_until_idle();
        let st = sim.request_stats(RequestType(0)).unwrap();
        assert!(
            st.latency.max() > 3_000_000,
            "hot shard should serialize: {}",
            st.latency.max()
        );
        // Spread keys -> parallel across shards, much faster.
        let mut app2 = AppBuilder::new("shard2");
        let svc2 = app2
            .service("s")
            .workers(1)
            .instances(4)
            .lb(LbPolicy::Partition)
            .build();
        let ep2 = app2.endpoint(
            svc2,
            "op",
            Dist::constant(64.0),
            vec![Step::Compute {
                ns: Dist::constant(200_000.0),
                domain: ExecDomain::User,
            }],
        );
        let mut sim2 = Simulation::new(app2.build(), ClusterSpec::xeon_cluster(4, 1), 10);
        for i in 0..20u64 {
            sim2.inject(SimTime::ZERO, ep2, RequestType(0), 64, i * 7919);
        }
        sim2.run_until_idle();
        let st2 = sim2.request_stats(RequestType(0)).unwrap();
        assert!(
            st2.latency.max() < st.latency.max(),
            "spread {} vs hot {}",
            st2.latency.max(),
            st.latency.max()
        );
    }

    #[test]
    fn offload_reduces_kernel_time() {
        let run = |offload: bool| {
            let mut app = AppBuilder::new("fpga");
            let back = app.service("back").workers(8).build();
            let get = app.endpoint(
                back,
                "get",
                Dist::constant(4096.0),
                vec![Step::work_us(5.0)],
            );
            let front = app.service("front").workers(8).build();
            let root = app.endpoint(
                front,
                "root",
                Dist::constant(1024.0),
                vec![Step::call(get, 2048.0)],
            );
            let mut sim = Simulation::new(app.build(), small_cluster(), 3);
            if offload {
                sim.set_offload(FpgaOffload::with_speedup(50.0));
            }
            for i in 0..100 {
                sim.inject(SimTime::from_micros(i * 100), root, RequestType(0), 256, i);
            }
            sim.run_until_idle();
            let front_kernel = sim.service_stats(front).time_ns[ExecDomain::Kernel.index()];
            let p99 = sim
                .request_stats(RequestType(0))
                .unwrap()
                .latency
                .quantile(0.99);
            (front_kernel, p99)
        };
        let (native_kernel, native_p99) = run(false);
        let (offload_kernel, offload_p99) = run(true);
        assert!(native_kernel > 0.0);
        assert_eq!(offload_kernel, 0.0, "offload must remove host kernel time");
        assert!(
            offload_p99 < native_p99,
            "offload {offload_p99} native {native_p99}"
        );
    }

    #[test]
    fn io_steps_insensitive_to_frequency() {
        let build = || {
            let mut app = AppBuilder::new("io");
            let svc = app.service("db").workers(8).build();
            let ep = app.endpoint(
                svc,
                "find",
                Dist::constant(64.0),
                vec![Step::Io {
                    ns: Dist::constant(2_000_000.0),
                }],
            );
            (app.build(), ep)
        };
        let run = |ghz: f64| {
            let (app, ep) = build();
            let mut sim = Simulation::new(app, small_cluster(), 2);
            sim.set_all_frequencies(ghz);
            sim.inject(SimTime::ZERO, ep, RequestType(0), 64, 1);
            sim.run_until_idle();
            sim.request_stats(RequestType(0)).unwrap().latency.max() as f64
        };
        let fast = run(2.4);
        let slow = run(1.0);
        // Only the (small) network processing scales; I/O dominates.
        assert!(
            slow / fast < 1.3,
            "io-bound should tolerate slow cores: {slow} vs {fast}"
        );
    }

    /// The cornerstone smoke test: the serial and parallel drivers must
    /// produce identical observables. (The full matrix lives in
    /// `tests/parallel_conformance.rs`.)
    #[test]
    fn workers_equivalent_to_serial() {
        let build = || {
            let mut app = AppBuilder::new("par");
            let back = app.service("back").workers(8).build();
            let get = app.endpoint(
                back,
                "get",
                Dist::constant(512.0),
                vec![Step::work_us(20.0)],
            );
            let front = app.service("front").workers(8).build();
            let root = app.endpoint(
                front,
                "root",
                Dist::constant(1024.0),
                vec![Step::work_us(10.0), Step::call(get, 128.0)],
            );
            (app.build(), root)
        };
        let run = |workers: usize| {
            let (app, ep) = build();
            let mut cluster = ClusterSpec::xeon_cluster(4, 2);
            cluster.trace_sample_prob = 1.0;
            let mut sim = Simulation::new(app, cluster, 99);
            sim.set_workers(workers);
            for i in 0..200u64 {
                sim.inject(SimTime::from_micros(i * 40), ep, RequestType(0), 128, i);
            }
            sim.run_until_idle();
            let st = sim.request_stats(RequestType(0)).unwrap();
            let spans: Vec<_> = sim
                .collector()
                .sampled_traces()
                .flat_map(|(t, spans)| {
                    spans
                        .iter()
                        .map(move |s| (t.0, s.id.0, s.start.as_nanos(), s.end.as_nanos()))
                })
                .collect();
            (
                sim.events_processed(),
                st.completed,
                st.latency.quantile(0.5),
                st.latency.quantile(0.99),
                spans,
            )
        };
        let serial = run(1);
        assert_eq!(serial.1, 200);
        for w in [2, 4] {
            assert_eq!(run(w), serial, "workers={w} diverged from serial");
        }
    }
}
