//! The simulation runtime: machines, instances, invocations, the event
//! interpreter, and the [`Simulation`] façade.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use dsb_net::{Fabric, FpgaOffload, Nic, Protocol, Zone};
use dsb_simcore::{Model, Rng, Scheduler, SimDuration, SimTime, UtilizationTracker};
use dsb_trace::{Span, SpanId, TraceCollector, TraceId};
use dsb_uarch::{CoreModel, ExecDomain};

use crate::slab::{Slab, SlabKey};
use crate::spec::{
    AppSpec, ClusterSpec, Concurrency, EndpointRef, InstanceId, LbPolicy, MachineId, RequestType,
    ServiceId, Step, WorkerPolicy,
};
use crate::stats::{RequestStats, ServiceStats};

/// A read-only aggregate of the connection pools one service holds toward
/// a downstream service, as sampled by a telemetry scrape.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnPoolSnapshot {
    /// Connections currently checked out, summed over caller instances.
    pub in_use: u64,
    /// Pool capacity, summed over caller instances.
    pub limit: u64,
    /// Invocations parked waiting for a free connection.
    pub waiters: u64,
}

impl ConnPoolSnapshot {
    /// Fraction of pooled connections in use, in `[0, 1]` (0 if no pool).
    pub fn occupancy(&self) -> f64 {
        if self.limit == 0 {
            0.0
        } else {
            self.in_use as f64 / self.limit as f64
        }
    }

    /// A pool is saturated when every connection is checked out and at
    /// least one caller is parked waiting — the Fig. 17 backpressure
    /// signature.
    pub fn saturated(&self) -> bool {
        self.limit > 0 && self.in_use >= self.limit && self.waiters > 0
    }
}

/// Lifecycle of a service instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstanceState {
    /// Container is booting; not yet in load-balancer rotation.
    Starting,
    /// Serving traffic.
    Up,
    /// Removed from rotation; finishing queued work.
    Draining,
}

// ---------------------------------------------------------------------------
// Runtime state
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct Machine {
    cores: u32,
    core: CoreModel,
    zone: Zone,
    nic: Nic,
    offload: FpgaOffload,
    busy: u32,
    /// Pool tickets of queued [`CoreJob`]s awaiting a free core.
    run_queue: VecDeque<u32>,
    util: UtilizationTracker,
}

#[derive(Debug)]
struct ConnPool {
    limit: u32,
    in_use: u32,
    waiters: VecDeque<SlabKey>,
}

#[derive(Debug)]
struct PendingReq {
    msg: RequestMsg,
    arrived: SimTime,
    recv_net_ns: f64,
}

#[derive(Debug)]
struct Instance {
    service: ServiceId,
    machine: MachineId,
    state: InstanceState,
    /// `None` means on-demand (serverless) workers.
    worker_limit: Option<u32>,
    warm_free: u32,
    busy_workers: u32,
    queue: VecDeque<PendingReq>,
    conns: BTreeMap<ServiceId, ConnPool>,
    inflight: u32,
    /// Completed invocations served by this instance (per-shard load).
    served: u64,
}

#[derive(Debug)]
struct ServiceRt {
    spec: crate::spec::ServiceSpec,
    instances: Vec<InstanceId>,
    rr: usize,
    pinned: Option<InstanceId>,
}

#[derive(Debug, Clone)]
struct Frame {
    block: Arc<Vec<Step>>,
    pc: usize,
}

#[derive(Debug, Clone)]
struct BlockedCall {
    target: EndpointRef,
    bytes: u64,
}

#[derive(Debug)]
struct Invocation {
    service: ServiceId,
    instance: InstanceId,
    machine: MachineId,
    endpoint: u32,
    req: u64,
    rtype: RequestType,
    origin: Zone,
    partition_key: u64,
    spawn: SimTime,
    caller: Option<SlabKey>,
    parent_span: Option<SpanId>,
    span: u64,
    frames: Vec<Frame>,
    outstanding: u32,
    worker_held: bool,
    conn_to: Option<ServiceId>,
    blocked: Option<BlockedCall>,
    arrived: SimTime,
    started: SimTime,
    app_ns: f64,
    net_ns: f64,
}

/// A request in flight between services (opaque; exposed only through
/// [`Ev`]).
#[derive(Debug)]
pub struct RequestMsg {
    req: u64,
    rtype: RequestType,
    origin: Zone,
    dst: InstanceId,
    endpoint: u32,
    caller: Option<SlabKey>,
    parent_span: Option<SpanId>,
    bytes: u64,
    partition_key: u64,
    spawn: SimTime,
}

/// A response in flight back to a caller (opaque).
#[derive(Debug)]
pub struct ResponseMsg {
    to_inv: SlabKey,
    bytes: u64,
    protocol: Protocol,
}

/// A message in flight (opaque; carried by [`Ev::MsgArrive`]).
#[derive(Debug)]
pub enum Message {
    Request(RequestMsg),
    Response(ResponseMsg),
    ClientReply { rtype: RequestType, spawn: SimTime },
}

/// A unit of CPU work scheduled on a machine core (opaque; carried by
/// [`Ev::CoreJobDone`]).
#[derive(Debug)]
pub struct CoreJob {
    dur: SimDuration,
    service: ServiceId,
    /// (domain, reference-core ns, actual ns) — up to two components.
    splits: [(ExecDomain, f64, f64); 2],
    cont: JobCont,
}

#[derive(Debug)]
enum JobCont {
    /// A script compute step finished; resume the invocation.
    StepDone(SlabKey),
    /// One CPU timeslice of a long compute step finished; requeue the
    /// remainder (models preemptive round-robin scheduling, so a long
    /// vision job cannot monopolize a weak core for seconds).
    StepChunk {
        /// The invocation whose step is executing.
        inv: SlabKey,
        /// Accounting domain of the step.
        domain: ExecDomain,
        /// Remaining reference-core nanoseconds.
        remaining_ref: f64,
        /// Remaining actual nanoseconds.
        remaining_actual: f64,
    },
    /// Send-side processing finished; push the message into the network.
    SendDone {
        msg: Message,
        from_machine: MachineId,
        bytes: u64,
        /// FPGA pipeline delay (send + recv side), added to flight time.
        extra: SimDuration,
        /// Invocation whose span is charged the send processing.
        charge: Option<SlabKey>,
    },
    /// Receive-side processing for a request finished; enqueue at instance.
    RecvRequest(RequestMsg),
    /// Receive-side processing for a response finished; resume the caller.
    RecvResponse(SlabKey),
}

/// A pending client request (opaque; carried by [`Ev::Inject`]).
#[derive(Debug)]
pub struct InjectReq {
    entry: EndpointRef,
    rtype: RequestType,
    bytes: u64,
    partition_key: u64,
    origin: Zone,
}

/// A free-list arena for hot event payloads.
///
/// The scheduler copies every queued event through its timing-wheel
/// slots (pushes, cascades, drains), so events must stay small; bulky
/// payloads ([`CoreJob`], [`Message`], [`InjectReq`]) park here and the
/// event carries a `u32` ticket. Ids are minted and retired in event
/// order, which is deterministic, and never leak into simulation
/// observables — pooling cannot perturb results.
#[derive(Debug)]
struct Pool<T> {
    slots: Vec<Option<T>>,
    free: Vec<u32>,
}

impl<T> Pool<T> {
    fn with_capacity(cap: usize) -> Self {
        Pool {
            slots: Vec::with_capacity(cap),
            free: Vec::with_capacity(cap),
        }
    }

    fn alloc(&mut self, value: T) -> u32 {
        match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = Some(value);
                i
            }
            None => {
                self.slots.push(Some(value));
                (self.slots.len() - 1) as u32
            }
        }
    }

    fn take(&mut self, id: u32) -> T {
        let v = self.slots[id as usize].take().expect("live pooled entry");
        self.free.push(id);
        v
    }

    fn get(&self, id: u32) -> &T {
        self.slots[id as usize].as_ref().expect("live pooled entry")
    }
}

/// The event alphabet of the microservice simulation.
#[derive(Debug)]
pub enum Ev {
    /// A client (or sensor) issues a request (pooled `InjectReq`).
    Inject(u32),
    /// A message finished its network flight (pooled `Message`).
    MsgArrive(u32),
    /// A core finished executing a job (pooled `CoreJob`).
    CoreJobDone {
        /// The machine whose core completed.
        machine: MachineId,
        /// Pool ticket of the completed job.
        job: u32,
    },
    /// An I/O wait completed.
    IoDone {
        /// The waiting invocation.
        inv: SlabKey,
    },
    /// A blocked caller was granted a downstream connection.
    ConnGranted {
        /// The unblocked invocation.
        inv: SlabKey,
        /// The service whose pool granted the connection.
        to: ServiceId,
    },
    /// A starting instance became ready.
    InstanceUp {
        /// The instance.
        inst: InstanceId,
    },
    /// A serverless cold start finished; a warm worker is available.
    WorkerSpawned {
        /// The instance that spawned the worker.
        inst: InstanceId,
    },
}

/// All mutable world state; implements [`Model`] over [`Ev`].
///
/// Use through [`Simulation`], which pairs it with a scheduler.
#[derive(Debug)]
pub struct Cluster {
    app: AppSpec,
    services: Vec<ServiceRt>,
    instances: Vec<Instance>,
    machines: Vec<Machine>,
    fabric: Fabric,
    collector: TraceCollector,
    service_stats: Vec<ServiceStats>,
    request_stats: Vec<RequestStats>,
    invocations: Slab<Invocation>,
    /// Recycled `Invocation::frames` vectors. Every invocation needs a
    /// frame stack and finishes with it empty; pooling the backing
    /// storage removes one allocation/free pair per invocation from the
    /// hot path.
    frame_pool: Vec<Vec<Frame>>,
    rng: Rng,
    next_req: u64,
    next_span: u64,
    window: SimDuration,
    instance_startup: SimDuration,
    cpu_quantum_ns: f64,
    admit_prob: f64,
    placer: crate::placement::Placer,
    ref_core: CoreModel,
    /// Memoized `speed_factor(service, machine)`, `services × machines`
    /// row-major; see [`Cluster::rebuild_core_caches`].
    sf_cache: Vec<f64>,
    /// Memoized reference-core IPC per service.
    ref_ipc_cache: Vec<f64>,
    /// Parked [`CoreJob`] payloads for in-flight [`Ev::CoreJobDone`]s.
    job_pool: Pool<CoreJob>,
    /// Parked [`Message`] payloads for in-flight [`Ev::MsgArrive`]s.
    msg_pool: Pool<Message>,
    /// Parked [`InjectReq`] payloads for scheduled [`Ev::Inject`]s.
    inject_pool: Pool<InjectReq>,
}

const REF_FREQ_GHZ: f64 = 2.4;

fn hash64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Cluster {
    fn new(app: AppSpec, cluster: &ClusterSpec, seed: u64) -> Self {
        let mut rng = Rng::new(seed);
        let machines = cluster
            .machines
            .iter()
            .map(|m| Machine {
                cores: m.cores,
                core: m.core,
                zone: m.zone,
                nic: Nic::new(m.nic_gbps),
                offload: FpgaOffload::disabled(),
                busy: 0,
                run_queue: VecDeque::with_capacity(16),
                util: UtilizationTracker::new(cluster.window, m.cores),
            })
            .collect();
        let collector =
            TraceCollector::new(cluster.window, cluster.trace_sample_prob, rng.next_u64());
        let service_stats = app
            .services
            .iter()
            .map(|_| ServiceStats::new(cluster.window))
            .collect();
        let services = app
            .services
            .iter()
            .cloned()
            .map(|spec| ServiceRt {
                spec,
                instances: Vec::new(),
                rr: 0,
                pinned: None,
            })
            .collect();
        let app_services = app.services.len();
        let mut c = Cluster {
            app,
            services,
            instances: Vec::new(),
            machines,
            fabric: Fabric::new(cluster.fabric),
            collector,
            service_stats,
            request_stats: Vec::new(),
            invocations: Slab::with_capacity(256),
            frame_pool: Vec::new(),
            rng,
            next_req: 0,
            next_span: 0,
            window: cluster.window,
            instance_startup: cluster.instance_startup,
            cpu_quantum_ns: cluster.cpu_quantum.as_nanos() as f64,
            admit_prob: 1.0,
            placer: crate::placement::Placer::new(cluster, app_services),
            ref_core: CoreModel::xeon(),
            sf_cache: Vec::new(),
            ref_ipc_cache: Vec::new(),
            job_pool: Pool::with_capacity(256),
            msg_pool: Pool::with_capacity(256),
            inject_pool: Pool::with_capacity(256),
        };
        c.rebuild_core_caches();
        for sid in 0..c.services.len() {
            for _ in 0..c.services[sid].spec.initial_instances {
                c.spawn_instance(ServiceId(sid as u32), InstanceState::Up);
            }
        }
        c
    }

    /// Recomputes the memoized per-(service, machine) speed factors and
    /// per-service reference-core IPC. `CoreModel::speed_factor` walks
    /// the full uarch breakdown twice per call, which is far too slow
    /// for once-per-hop use; both inputs (service profiles, machine
    /// cores) are fixed except across [`Simulation::set_frequency`],
    /// which rebuilds this table.
    fn rebuild_core_caches(&mut self) {
        let nm = self.machines.len();
        self.sf_cache.clear();
        self.ref_ipc_cache.clear();
        for rt in &self.services {
            let p = &rt.spec.profile;
            self.ref_ipc_cache.push(self.ref_core.ipc(p));
            for m in &self.machines {
                self.sf_cache.push(m.core.speed_factor(p));
            }
        }
        debug_assert_eq!(self.sf_cache.len(), self.services.len() * nm);
    }

    fn spawn_instance(&mut self, service: ServiceId, state: InstanceState) -> InstanceId {
        let machine = self
            .placer
            .place(service, &self.services[service.0 as usize].spec);
        let spec = &self.services[service.0 as usize].spec;
        let worker_limit = match &spec.workers {
            WorkerPolicy::Fixed(n) => Some(*n),
            WorkerPolicy::OnDemand { .. } => None,
        };
        let id = InstanceId(self.instances.len() as u32);
        self.instances.push(Instance {
            service,
            machine,
            state,
            worker_limit,
            warm_free: 0,
            busy_workers: 0,
            queue: VecDeque::with_capacity(16),
            conns: BTreeMap::new(),
            inflight: 0,
            served: 0,
        });
        self.services[service.0 as usize].instances.push(id);
        id
    }

    fn speed_factor(&self, service: ServiceId, machine: MachineId) -> f64 {
        self.sf_cache[service.0 as usize * self.machines.len() + machine.0 as usize]
    }

    fn ref_ipc(&self, service: ServiceId) -> f64 {
        self.ref_ipc_cache[service.0 as usize]
    }

    // -- CPU ---------------------------------------------------------------

    fn submit_job(&mut self, sched: &mut Scheduler<Ev>, machine: MachineId, job: CoreJob) {
        let dur = job.dur;
        let id = self.job_pool.alloc(job);
        let m = &mut self.machines[machine.0 as usize];
        if m.busy < m.cores {
            m.busy += 1;
            let now = sched.now();
            m.util.add_busy(now, now + dur);
            sched.schedule_in(dur, Ev::CoreJobDone { machine, job: id });
        } else {
            m.run_queue.push_back(id);
        }
    }

    fn on_job_done(&mut self, sched: &mut Scheduler<Ev>, machine: MachineId, job: u32) {
        let job = self.job_pool.take(job);
        // Start the next queued job (or free the core).
        {
            let now = sched.now();
            let m = &mut self.machines[machine.0 as usize];
            if let Some(next) = m.run_queue.pop_front() {
                let dur = self.job_pool.get(next).dur;
                m.util.add_busy(now, now + dur);
                sched.schedule_in(dur, Ev::CoreJobDone { machine, job: next });
            } else {
                m.busy -= 1;
            }
        }
        // Account the finished job.
        let freq = self.machines[machine.0 as usize].core.freq_ghz;
        let ipc = self.ref_ipc(job.service);
        let stats = &mut self.service_stats[job.service.0 as usize];
        for (domain, ref_ns, actual_ns) in job.splits {
            if actual_ns > 0.0 || ref_ns > 0.0 {
                stats.charge(domain, actual_ns, freq, ref_ns, ipc, REF_FREQ_GHZ);
            }
        }
        // Continuation.
        match job.cont {
            JobCont::StepDone(inv) => {
                let actual: f64 = job.splits.iter().map(|s| s.2).sum();
                if let Some(i) = self.invocations.get_mut(inv) {
                    i.app_ns += actual;
                }
                self.advance(sched, inv);
            }
            JobCont::StepChunk {
                inv,
                domain,
                remaining_ref,
                remaining_actual,
            } => {
                let actual: f64 = job.splits.iter().map(|s| s.2).sum();
                if let Some(i) = self.invocations.get_mut(inv) {
                    i.app_ns += actual;
                } else {
                    return;
                }
                let machine = self.invocations.get(inv).expect("live inv").machine;
                self.submit_compute(sched, inv, machine, domain, remaining_ref, remaining_actual);
            }
            JobCont::SendDone {
                msg,
                from_machine,
                bytes,
                extra,
                charge,
            } => {
                let actual: f64 = job.splits.iter().map(|s| s.2).sum();
                let tx = self.transmit(sched, from_machine, bytes, extra, msg);
                if let Some(k) = charge {
                    if let Some(i) = self.invocations.get_mut(k) {
                        // Processing plus NIC queueing/serialization both
                        // count as network time (the paper's §5 metric).
                        i.net_ns += actual + tx.as_nanos() as f64;
                    }
                }
            }
            JobCont::RecvRequest(msg) => {
                let actual: f64 = job.splits.iter().map(|s| s.2).sum();
                self.enqueue_request(sched, msg, actual);
            }
            JobCont::RecvResponse(inv) => {
                let actual: f64 = job.splits.iter().map(|s| s.2).sum();
                if let Some(i) = self.invocations.get_mut(inv) {
                    i.net_ns += actual;
                }
                self.on_response(sched, inv);
            }
        }
    }

    // -- Network -----------------------------------------------------------

    /// Queues send-side processing for `msg` on `from`'s cores, then (via
    /// `SendDone`) pushes it through the NIC and fabric.
    #[allow(clippy::too_many_arguments)]
    fn begin_send(
        &mut self,
        sched: &mut Scheduler<Ev>,
        from: MachineId,
        acct: ServiceId,
        protocol: Protocol,
        bytes: u64,
        msg: Message,
        charge: Option<SlabKey>,
    ) {
        let costs = protocol.costs(bytes);
        let m = &self.machines[from.0 as usize];
        let (host_kernel, pipe_send) = m.offload.apply(costs.send_kernel_ns);
        // Receiver-side FPGA pipeline delay is added here too (we know the
        // destination), so delivery happens in a single hop.
        let pipe_recv = match &msg {
            Message::Request(rm) => {
                let mach = self.instances[rm.dst.0 as usize].machine;
                self.machines[mach.0 as usize]
                    .offload
                    .apply(costs.recv_kernel_ns)
                    .1
            }
            Message::Response(resp) => match self.invocations.get(resp.to_inv) {
                Some(i) => {
                    self.machines[i.machine.0 as usize]
                        .offload
                        .apply(costs.recv_kernel_ns)
                        .1
                }
                None => 0.0,
            },
            Message::ClientReply { .. } => 0.0,
        };
        let sf = self.speed_factor(acct, from);
        let kernel_act = host_kernel * sf;
        let libs_act = costs.send_libs_ns * sf;
        let dur = SimDuration::from_nanos((kernel_act + libs_act) as u64);
        let job = CoreJob {
            dur,
            service: acct,
            splits: [
                (ExecDomain::Kernel, host_kernel, kernel_act),
                (ExecDomain::Libs, costs.send_libs_ns, libs_act),
            ],
            cont: JobCont::SendDone {
                msg,
                from_machine: from,
                bytes,
                extra: SimDuration::from_nanos((pipe_send + pipe_recv) as u64),
                charge,
            },
        };
        self.submit_job(sched, from, job);
    }

    fn transmit(
        &mut self,
        sched: &mut Scheduler<Ev>,
        from: MachineId,
        bytes: u64,
        extra: SimDuration,
        msg: Message,
    ) -> SimDuration {
        let now = sched.now();
        let tx = self.machines[from.0 as usize].nic.transmit(now, bytes);
        let from_zone = self.machines[from.0 as usize].zone;
        let prop = match &msg {
            Message::Request(rm) => {
                let mach = self.instances[rm.dst.0 as usize].machine;
                if mach == from {
                    self.fabric.loopback()
                } else {
                    let z = self.machines[mach.0 as usize].zone;
                    self.fabric.delay(from_zone, z, &mut self.rng)
                }
            }
            Message::Response(resp) => match self.invocations.get(resp.to_inv) {
                Some(i) => {
                    let mach = i.machine;
                    if mach == from {
                        self.fabric.loopback()
                    } else {
                        let z = self.machines[mach.0 as usize].zone;
                        self.fabric.delay(from_zone, z, &mut self.rng)
                    }
                }
                None => self.fabric.loopback(),
            },
            Message::ClientReply { .. } => {
                // Reply to the request's origin zone.
                self.fabric.delay(from_zone, Zone::Client, &mut self.rng)
            }
        };
        sched.schedule_in(tx + prop + extra, Ev::MsgArrive(self.msg_pool.alloc(msg)));
        tx
    }

    fn deliver(&mut self, sched: &mut Scheduler<Ev>, msg: Message) {
        match msg {
            Message::Request(rm) => {
                let inst = &self.instances[rm.dst.0 as usize];
                let machine = inst.machine;
                let service = inst.service;
                let protocol = self.services[service.0 as usize].spec.protocol;
                let costs = protocol.costs(rm.bytes);
                let (host_kernel, _pipe) = self.machines[machine.0 as usize]
                    .offload
                    .apply(costs.recv_kernel_ns);
                let sf = self.speed_factor(service, machine);
                let kernel_act = host_kernel * sf;
                let libs_act = costs.recv_libs_ns * sf;
                let dur = SimDuration::from_nanos((kernel_act + libs_act) as u64);
                let job = CoreJob {
                    dur,
                    service,
                    splits: [
                        (ExecDomain::Kernel, host_kernel, kernel_act),
                        (ExecDomain::Libs, costs.recv_libs_ns, libs_act),
                    ],
                    cont: JobCont::RecvRequest(rm),
                };
                self.submit_job(sched, machine, job);
            }
            Message::Response(resp) => {
                let Some(inv) = self.invocations.get(resp.to_inv) else {
                    return;
                };
                let machine = inv.machine;
                let service = inv.service;
                let costs = resp.protocol.costs(resp.bytes);
                let (host_kernel, _pipe) = self.machines[machine.0 as usize]
                    .offload
                    .apply(costs.recv_kernel_ns);
                let sf = self.speed_factor(service, machine);
                let kernel_act = host_kernel * sf;
                let libs_act = costs.recv_libs_ns * sf;
                let dur = SimDuration::from_nanos((kernel_act + libs_act) as u64);
                let job = CoreJob {
                    dur,
                    service,
                    splits: [
                        (ExecDomain::Kernel, host_kernel, kernel_act),
                        (ExecDomain::Libs, costs.recv_libs_ns, libs_act),
                    ],
                    cont: JobCont::RecvResponse(resp.to_inv),
                };
                self.submit_job(sched, machine, job);
            }
            Message::ClientReply { rtype, spawn } => {
                let now = sched.now();
                self.request_stats_mut(rtype).complete(now, now - spawn);
            }
        }
    }

    // -- Instance dispatch ---------------------------------------------------

    fn enqueue_request(&mut self, sched: &mut Scheduler<Ev>, msg: RequestMsg, recv_net_ns: f64) {
        let now = sched.now();
        let inst_id = msg.dst;
        let service = self.instances[inst_id.0 as usize].service;
        let on_demand = self.instances[inst_id.0 as usize].worker_limit.is_none();
        let needs_spawn = {
            let inst = &mut self.instances[inst_id.0 as usize];
            inst.inflight += 1;
            inst.queue.push_back(PendingReq {
                msg,
                arrived: now,
                recv_net_ns,
            });
            on_demand && inst.warm_free == 0
        };
        if needs_spawn {
            let cold = match &self.services[service.0 as usize].spec.workers {
                WorkerPolicy::OnDemand { cold_start_ns } => cold_start_ns.sample(&mut self.rng),
                WorkerPolicy::Fixed(_) => 0.0,
            };
            sched.schedule_in(
                SimDuration::from_nanos(cold as u64),
                Ev::WorkerSpawned { inst: inst_id },
            );
        }
        self.try_dispatch(sched, inst_id);
    }

    fn worker_available(&self, inst: &Instance) -> bool {
        match inst.worker_limit {
            Some(limit) => inst.busy_workers < limit,
            None => inst.warm_free > 0,
        }
    }

    fn try_dispatch(&mut self, sched: &mut Scheduler<Ev>, inst_id: InstanceId) {
        loop {
            let pending = {
                let inst = &mut self.instances[inst_id.0 as usize];
                if inst.queue.is_empty() || !self.worker_available_idx(inst_id) {
                    return;
                }
                let inst = &mut self.instances[inst_id.0 as usize];
                if inst.worker_limit.is_none() {
                    inst.warm_free -= 1;
                }
                inst.busy_workers += 1;
                inst.queue.pop_front().expect("checked non-empty")
            };
            self.start_invocation(sched, inst_id, pending);
        }
    }

    fn worker_available_idx(&self, inst_id: InstanceId) -> bool {
        self.worker_available(&self.instances[inst_id.0 as usize])
    }

    fn start_invocation(&mut self, sched: &mut Scheduler<Ev>, inst_id: InstanceId, p: PendingReq) {
        let now = sched.now();
        let inst = &self.instances[inst_id.0 as usize];
        let service = inst.service;
        let machine = inst.machine;
        let script = self.services[service.0 as usize].spec.endpoints[p.msg.endpoint as usize]
            .script
            .clone();
        self.next_span += 1;
        let mut frames = self.frame_pool.pop().unwrap_or_default();
        frames.push(Frame {
            block: script,
            pc: 0,
        });
        let inv = Invocation {
            service,
            instance: inst_id,
            machine,
            endpoint: p.msg.endpoint,
            req: p.msg.req,
            rtype: p.msg.rtype,
            origin: p.msg.origin,
            partition_key: p.msg.partition_key,
            spawn: p.msg.spawn,
            caller: p.msg.caller,
            parent_span: p.msg.parent_span,
            span: self.next_span,
            frames,
            outstanding: 0,
            worker_held: true,
            conn_to: None,
            blocked: None,
            arrived: p.arrived,
            started: now,
            app_ns: 0.0,
            net_ns: p.recv_net_ns,
        };
        let key = self.invocations.insert(inv);
        self.advance(sched, key);
    }

    // -- Script interpreter --------------------------------------------------

    fn next_step(&mut self, key: SlabKey) -> Option<Option<Step>> {
        // Outer None: invocation vanished. Inner None: script finished.
        let inv = self.invocations.get_mut(key)?;
        loop {
            let Some(frame) = inv.frames.last_mut() else {
                return Some(None);
            };
            if frame.pc >= frame.block.len() {
                inv.frames.pop();
                continue;
            }
            let step = frame.block[frame.pc].clone();
            frame.pc += 1;
            return Some(Some(step));
        }
    }

    fn advance(&mut self, sched: &mut Scheduler<Ev>, key: SlabKey) {
        loop {
            let Some(step) = self.next_step(key) else {
                return;
            };
            let Some(step) = step else {
                self.finish_invocation(sched, key);
                return;
            };
            match step {
                Step::Compute { ns, domain } => {
                    let ref_ns = ns.sample(&mut self.rng);
                    let (service, machine) = {
                        let inv = self.invocations.get(key).expect("advancing live inv");
                        (inv.service, inv.machine)
                    };
                    let sf = self.speed_factor(service, machine);
                    let actual = ref_ns * sf;
                    self.submit_compute(sched, key, machine, domain, ref_ns, actual);
                    return;
                }
                Step::Io { ns } => {
                    let wait = ns.sample(&mut self.rng);
                    sched.schedule_in(
                        SimDuration::from_nanos(wait as u64),
                        Ev::IoDone { inv: key },
                    );
                    return;
                }
                Step::Call { target, req_bytes } => {
                    let bytes = req_bytes.sample(&mut self.rng).max(1.0) as u64;
                    {
                        let inv = self.invocations.get_mut(key).expect("live inv");
                        inv.outstanding = 1;
                    }
                    self.maybe_release_worker(sched, key);
                    let blocking = self.services[target.service.0 as usize]
                        .spec
                        .protocol
                        .blocking_connections();
                    if blocking {
                        self.call_with_connection(sched, key, target, bytes);
                    } else {
                        self.send_call(sched, key, target, bytes);
                    }
                    return;
                }
                Step::ParCall { calls } => {
                    if calls.is_empty() {
                        continue;
                    }
                    let sampled: Vec<(EndpointRef, u64)> = calls
                        .iter()
                        .map(|(t, d)| (*t, d.sample(&mut self.rng).max(1.0) as u64))
                        .collect();
                    {
                        let inv = self.invocations.get_mut(key).expect("live inv");
                        inv.outstanding = sampled.len() as u32;
                    }
                    self.maybe_release_worker(sched, key);
                    for (t, b) in sampled {
                        self.send_call(sched, key, t, b);
                    }
                    return;
                }
                Step::FanCall {
                    target,
                    req_bytes,
                    n,
                } => {
                    let count = n.sample(&mut self.rng).round().max(0.0) as u32;
                    if count == 0 {
                        continue;
                    }
                    let bytes: Vec<u64> = (0..count)
                        .map(|_| req_bytes.sample(&mut self.rng).max(1.0) as u64)
                        .collect();
                    {
                        let inv = self.invocations.get_mut(key).expect("live inv");
                        inv.outstanding = count;
                    }
                    self.maybe_release_worker(sched, key);
                    for b in bytes {
                        self.send_call(sched, key, target, b);
                    }
                    return;
                }
                Step::Branch { p, then, els } => {
                    let block = if self.rng.chance(p) { then } else { els };
                    if !block.is_empty() {
                        let inv = self.invocations.get_mut(key).expect("live inv");
                        inv.frames.push(Frame { block, pc: 0 });
                    }
                    continue;
                }
            }
        }
    }

    /// Submits a compute step as one core job, or as 5 ms timeslices if
    /// it is long (round-robin preemption).
    fn submit_compute(
        &mut self,
        sched: &mut Scheduler<Ev>,
        key: SlabKey,
        machine: MachineId,
        domain: ExecDomain,
        ref_ns: f64,
        actual_ns: f64,
    ) {
        let service = self.invocations.get(key).expect("live inv").service;
        let quantum = self.cpu_quantum_ns;
        if actual_ns <= quantum {
            let job = CoreJob {
                dur: SimDuration::from_nanos(actual_ns as u64),
                service,
                splits: [(domain, ref_ns, actual_ns), (ExecDomain::Other, 0.0, 0.0)],
                cont: JobCont::StepDone(key),
            };
            self.submit_job(sched, machine, job);
        } else {
            let frac = quantum / actual_ns;
            let chunk_ref = ref_ns * frac;
            let job = CoreJob {
                dur: SimDuration::from_nanos(quantum as u64),
                service,
                splits: [(domain, chunk_ref, quantum), (ExecDomain::Other, 0.0, 0.0)],
                cont: JobCont::StepChunk {
                    inv: key,
                    domain,
                    remaining_ref: ref_ns - chunk_ref,
                    remaining_actual: actual_ns - quantum,
                },
            };
            self.submit_job(sched, machine, job);
        }
    }

    /// Event-driven services release their worker at the first await point.
    fn maybe_release_worker(&mut self, sched: &mut Scheduler<Ev>, key: SlabKey) {
        let (service, held) = {
            let inv = self.invocations.get(key).expect("live inv");
            (inv.service, inv.worker_held)
        };
        if held && self.services[service.0 as usize].spec.concurrency == Concurrency::Async {
            let inst_id = self.invocations.get(key).expect("live").instance;
            {
                let inv = self.invocations.get_mut(key).expect("live");
                inv.worker_held = false;
            }
            self.release_worker(inst_id);
            self.try_dispatch(sched, inst_id);
        }
    }

    fn release_worker(&mut self, inst_id: InstanceId) {
        let inst = &mut self.instances[inst_id.0 as usize];
        inst.busy_workers -= 1;
        if inst.worker_limit.is_none() {
            inst.warm_free += 1;
        }
    }

    fn call_with_connection(
        &mut self,
        sched: &mut Scheduler<Ev>,
        key: SlabKey,
        target: EndpointRef,
        bytes: u64,
    ) {
        let inst_id = self.invocations.get(key).expect("live inv").instance;
        let limit = self.services[target.service.0 as usize].spec.conn_limit;
        let granted = {
            let inst = &mut self.instances[inst_id.0 as usize];
            let pool = inst
                .conns
                .entry(target.service)
                .or_insert_with(|| ConnPool {
                    limit,
                    in_use: 0,
                    waiters: VecDeque::with_capacity(8),
                });
            if pool.in_use < pool.limit {
                pool.in_use += 1;
                true
            } else {
                pool.waiters.push_back(key);
                false
            }
        };
        if granted {
            let inv = self.invocations.get_mut(key).expect("live inv");
            inv.conn_to = Some(target.service);
            self.send_call(sched, key, target, bytes);
        } else {
            let inv = self.invocations.get_mut(key).expect("live inv");
            inv.blocked = Some(BlockedCall { target, bytes });
        }
    }

    fn send_call(
        &mut self,
        sched: &mut Scheduler<Ev>,
        key: SlabKey,
        target: EndpointRef,
        bytes: u64,
    ) {
        let (machine, service, req, rtype, origin, pk, spawn, span) = {
            let inv = self.invocations.get(key).expect("live inv");
            (
                inv.machine,
                inv.service,
                inv.req,
                inv.rtype,
                inv.origin,
                inv.partition_key,
                inv.spawn,
                inv.span,
            )
        };
        let dst = self.pick_instance(target.service, pk);
        let protocol = self.services[target.service.0 as usize].spec.protocol;
        let msg = Message::Request(RequestMsg {
            req,
            rtype,
            origin,
            dst,
            endpoint: target.endpoint,
            caller: Some(key),
            parent_span: Some(SpanId(span)),
            bytes,
            partition_key: pk,
            spawn,
        });
        self.begin_send(sched, machine, service, protocol, bytes, msg, Some(key));
    }

    fn pick_instance(&mut self, service: ServiceId, partition_key: u64) -> InstanceId {
        let rt = &self.services[service.0 as usize];
        if let Some(pin) = rt.pinned {
            return pin;
        }
        // Runs once per hop on the hot path: scan the Up subset in place
        // instead of collecting it. The selection for every policy is
        // identical to indexing into the collected Up vector (same
        // instance order, first minimum on ties).
        let up_count = rt
            .instances
            .iter()
            .filter(|i| self.instances[i.0 as usize].state == InstanceState::Up)
            .count();
        assert!(
            up_count > 0,
            "service {} has no live instances",
            rt.spec.name
        );
        match rt.spec.lb {
            LbPolicy::RoundRobin => {
                let idx = {
                    let rt = &mut self.services[service.0 as usize];
                    rt.rr = rt.rr.wrapping_add(1);
                    rt.rr % up_count
                };
                let rt = &self.services[service.0 as usize];
                rt.instances
                    .iter()
                    .copied()
                    .filter(|i| self.instances[i.0 as usize].state == InstanceState::Up)
                    .nth(idx)
                    .expect("idx < up_count")
            }
            LbPolicy::LeastOutstanding => rt
                .instances
                .iter()
                .copied()
                .filter(|i| self.instances[i.0 as usize].state == InstanceState::Up)
                .min_by_key(|i| self.instances[i.0 as usize].inflight)
                .expect("non-empty"),
            LbPolicy::Partition => {
                // Shard membership must be a stable function of the key
                // over the *total* instance list: hashing modulo the `Up`
                // subset would remap every key the moment one shard leaves
                // rotation. A key whose home shard is down fails over by
                // probing forward, so only that shard's keys move.
                let all = &rt.instances;
                let start = (hash64(partition_key) % all.len() as u64) as usize;
                (0..all.len())
                    .map(|off| all[(start + off) % all.len()])
                    .find(|i| self.instances[i.0 as usize].state == InstanceState::Up)
                    .expect("checked above: at least one Up instance")
            }
        }
    }

    fn on_response(&mut self, sched: &mut Scheduler<Ev>, key: SlabKey) {
        let Some(inv) = self.invocations.get_mut(key) else {
            return;
        };
        let inst_id = inv.instance;
        let conn_release = inv.conn_to.take();
        inv.outstanding = inv.outstanding.saturating_sub(1);
        let done_waiting = inv.outstanding == 0;
        if let Some(to) = conn_release {
            self.release_connection(sched, inst_id, to);
        }
        if done_waiting {
            self.advance(sched, key);
        }
    }

    fn release_connection(
        &mut self,
        sched: &mut Scheduler<Ev>,
        inst_id: InstanceId,
        to: ServiceId,
    ) {
        let waiter = {
            let inst = &mut self.instances[inst_id.0 as usize];
            let pool = inst.conns.get_mut(&to).expect("pool exists on release");
            match pool.waiters.pop_front() {
                Some(w) => Some(w), // token transfers to the waiter
                None => {
                    pool.in_use -= 1;
                    None
                }
            }
        };
        if let Some(w) = waiter {
            sched.schedule_now(Ev::ConnGranted { inv: w, to });
        }
    }

    fn on_conn_granted(&mut self, sched: &mut Scheduler<Ev>, key: SlabKey, to: ServiceId) {
        let Some(inv) = self.invocations.get_mut(key) else {
            // Waiter vanished (should not happen for blocked callers);
            // return the token.
            return;
        };
        let blocked = inv.blocked.take().expect("granted inv was blocked");
        inv.conn_to = Some(to);
        self.send_call(sched, key, blocked.target, blocked.bytes);
    }

    fn finish_invocation(&mut self, sched: &mut Scheduler<Ev>, key: SlabKey) {
        let now = sched.now();
        let mut inv = self.invocations.remove(key).expect("finishing live inv");
        // The frame stack is empty by now (the script ran to completion);
        // recycle its backing storage for the next invocation.
        let mut frames = std::mem::take(&mut inv.frames);
        frames.clear();
        if self.frame_pool.len() < 1024 {
            self.frame_pool.push(frames);
        }
        // Span.
        self.collector.record(Span {
            trace: TraceId(inv.req),
            id: SpanId(inv.span),
            parent: inv.parent_span,
            service: inv.service.0,
            endpoint: inv.endpoint,
            start: inv.arrived,
            end: now,
            queue_time: inv.started - inv.arrived,
            app_time: SimDuration::from_nanos(inv.app_ns as u64),
            net_time: SimDuration::from_nanos(inv.net_ns as u64),
        });
        let stats = &mut self.service_stats[inv.service.0 as usize];
        stats.invocations += 1;
        let e = inv.endpoint as usize;
        if stats.endpoint_invocations.len() <= e {
            stats.endpoint_invocations.resize(e + 1, 0);
        }
        stats.endpoint_invocations[e] += 1;
        self.instances[inv.instance.0 as usize].served += 1;
        // Worker + inflight.
        if inv.worker_held {
            self.release_worker(inv.instance);
        }
        self.instances[inv.instance.0 as usize].inflight -= 1;
        self.try_dispatch(sched, inv.instance);
        // Reply.
        let resp_bytes = self.services[inv.service.0 as usize].spec.endpoints[inv.endpoint as usize]
            .resp_bytes
            .sample(&mut self.rng)
            .max(1.0) as u64;
        let protocol = self.services[inv.service.0 as usize].spec.protocol;
        let msg = match inv.caller {
            Some(caller) => Message::Response(ResponseMsg {
                to_inv: caller,
                bytes: resp_bytes,
                protocol,
            }),
            None => Message::ClientReply {
                rtype: inv.rtype,
                spawn: inv.spawn,
            },
        };
        self.begin_send(
            sched,
            inv.machine,
            inv.service,
            protocol,
            resp_bytes,
            msg,
            None,
        );
    }

    fn request_stats_mut(&mut self, rtype: RequestType) -> &mut RequestStats {
        let idx = rtype.0 as usize;
        if idx >= self.request_stats.len() {
            let w = self.window;
            self.request_stats
                .resize_with(idx + 1, || RequestStats::new(w));
        }
        &mut self.request_stats[idx]
    }

    fn on_inject(
        &mut self,
        sched: &mut Scheduler<Ev>,
        entry: EndpointRef,
        rtype: RequestType,
        bytes: u64,
        partition_key: u64,
        origin: Zone,
    ) {
        let admit = self.admit_prob >= 1.0 || self.rng.chance(self.admit_prob);
        let stats = self.request_stats_mut(rtype);
        stats.issued += 1;
        if !admit {
            stats.rejected += 1;
            return;
        }
        self.next_req += 1;
        let req = self.next_req;
        let dst = self.pick_instance(entry.service, partition_key);
        let dst_zone = self.machines[self.instances[dst.0 as usize].machine.0 as usize].zone;
        let delay = self.fabric.delay(origin, dst_zone, &mut self.rng);
        let now = sched.now();
        let msg = Message::Request(RequestMsg {
            req,
            rtype,
            origin,
            dst,
            endpoint: entry.endpoint,
            caller: None,
            parent_span: None,
            bytes,
            partition_key,
            spawn: now,
        });
        sched.schedule_in(delay, Ev::MsgArrive(self.msg_pool.alloc(msg)));
    }
}

impl Model for Cluster {
    type Event = Ev;

    fn handle(&mut self, sched: &mut Scheduler<Ev>, ev: Ev) {
        match ev {
            Ev::Inject(id) => {
                let r = self.inject_pool.take(id);
                self.on_inject(sched, r.entry, r.rtype, r.bytes, r.partition_key, r.origin);
            }
            Ev::MsgArrive(id) => {
                let msg = self.msg_pool.take(id);
                self.deliver(sched, msg);
            }
            Ev::CoreJobDone { machine, job } => self.on_job_done(sched, machine, job),
            Ev::IoDone { inv } => self.advance(sched, inv),
            Ev::ConnGranted { inv, to } => self.on_conn_granted(sched, inv, to),
            Ev::InstanceUp { inst } => {
                let i = &mut self.instances[inst.0 as usize];
                if i.state == InstanceState::Starting {
                    i.state = InstanceState::Up;
                }
            }
            Ev::WorkerSpawned { inst } => {
                self.instances[inst.0 as usize].warm_free += 1;
                self.try_dispatch(sched, inst);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Façade
// ---------------------------------------------------------------------------

/// A complete simulation: scheduler plus cluster state, with the control
/// surface the paper's experiments drive.
///
/// # Example
///
/// ```
/// use dsb_core::{AppBuilder, ClusterSpec, RequestType, Simulation, Step};
/// use dsb_simcore::{Dist, SimDuration, SimTime};
///
/// let mut app = AppBuilder::new("hello");
/// let svc = app.service("svc").event_driven().workers(64).build();
/// let ep = app.endpoint(svc, "get", Dist::constant(512.0), vec![Step::work_us(50.0)]);
/// let mut sim = Simulation::new(app.build(), ClusterSpec::xeon_cluster(2, 1), 1);
///
/// for i in 0..100u64 {
///     sim.inject(SimTime::from_millis(i), ep, RequestType(0), 256, i);
/// }
/// sim.run_until_idle();
/// let stats = sim.request_stats(RequestType(0)).unwrap();
/// assert_eq!(stats.completed, 100);
/// assert!(stats.p99() > SimDuration::from_micros(50));
/// ```
#[derive(Debug)]
pub struct Simulation {
    sched: Scheduler<Ev>,
    cluster: Cluster,
}

impl Simulation {
    /// Builds a simulation of `app` on `cluster`, seeded deterministically.
    pub fn new(app: AppSpec, cluster: ClusterSpec, seed: u64) -> Self {
        let sched = Scheduler::new(seed ^ 0xD5B);
        let c = Cluster::new(app, &cluster, seed);
        Simulation { sched, cluster: c }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// Total events processed.
    pub fn events_processed(&self) -> u64 {
        self.sched.events_processed()
    }

    /// Runs until all pending events (including in-flight requests) drain.
    pub fn run_until_idle(&mut self) {
        self.sched.run(&mut self.cluster);
    }

    /// Runs the simulation up to the given virtual time, then returns so a
    /// controller (autoscaler, workload generator) can act.
    pub fn advance_to(&mut self, t: SimTime) {
        self.sched.run_until(&mut self.cluster, t);
    }

    /// Schedules one client request at `at` from the default client zone.
    pub fn inject(
        &mut self,
        at: SimTime,
        entry: EndpointRef,
        rtype: RequestType,
        bytes: u64,
        partition_key: u64,
    ) {
        self.inject_from(at, entry, rtype, bytes, partition_key, Zone::Client);
    }

    /// Schedules one request at `at`, originating from `origin` (e.g.
    /// [`Zone::Edge`] for sensor-generated traffic).
    pub fn inject_from(
        &mut self,
        at: SimTime,
        entry: EndpointRef,
        rtype: RequestType,
        bytes: u64,
        partition_key: u64,
        origin: Zone,
    ) {
        let id = self.cluster.inject_pool.alloc(InjectReq {
            entry,
            rtype,
            bytes,
            partition_key,
            origin,
        });
        self.sched.schedule_at(at, Ev::Inject(id));
    }

    /// The application being simulated.
    pub fn app(&self) -> &AppSpec {
        &self.cluster.app
    }

    /// End-to-end statistics for a request type (None if never injected).
    pub fn request_stats(&self, rtype: RequestType) -> Option<&RequestStats> {
        self.cluster.request_stats.get(rtype.0 as usize)
    }

    /// Execution statistics for a service.
    pub fn service_stats(&self, service: ServiceId) -> &ServiceStats {
        &self.cluster.service_stats[service.0 as usize]
    }

    /// The distributed-tracing collector.
    pub fn collector(&self) -> &TraceCollector {
        &self.cluster.collector
    }

    /// Number of `Up` instances of a service.
    pub fn instance_count(&self, service: ServiceId) -> usize {
        self.cluster.services[service.0 as usize]
            .instances
            .iter()
            .filter(|i| self.cluster.instances[i.0 as usize].state == InstanceState::Up)
            .count()
    }

    /// Instantaneous worker occupancy of a service in `[0, 1]`: busy
    /// workers over total fixed workers across `Up` instances. This is the
    /// signal a utilization-driven autoscaler sees — and it counts workers
    /// blocked on downstream calls as busy, which is exactly the misleading
    /// behaviour of Figs. 17/19/20. On-demand (serverless) services report
    /// 0 (they scale themselves).
    pub fn occupancy(&self, service: ServiceId) -> f64 {
        let mut busy = 0u64;
        let mut cap = 0u64;
        for id in &self.cluster.services[service.0 as usize].instances {
            let inst = &self.cluster.instances[id.0 as usize];
            if inst.state != InstanceState::Up {
                continue;
            }
            if let Some(limit) = inst.worker_limit {
                busy += inst.busy_workers as u64;
                cap += limit as u64;
            }
        }
        if cap == 0 {
            0.0
        } else {
            busy as f64 / cap as f64
        }
    }

    /// Total queued + running invocations across a service's instances.
    pub fn service_inflight(&self, service: ServiceId) -> u64 {
        self.cluster.services[service.0 as usize]
            .instances
            .iter()
            .map(|i| self.cluster.instances[i.0 as usize].inflight as u64)
            .sum()
    }

    /// Mean core utilization of machine `m` in window `w`.
    pub fn machine_utilization(&self, m: MachineId, w: usize) -> f64 {
        self.cluster.machines[m.0 as usize].util.utilization(w)
    }

    /// Number of machines in the cluster.
    pub fn machine_count(&self) -> usize {
        self.cluster.machines.len()
    }

    // -- Telemetry hooks -----------------------------------------------------
    //
    // Read-only snapshot getters polled by `dsb-telemetry`'s scraper at a
    // fixed sim-time interval. None of them touch the RNG or the event
    // queue, so attaching telemetry cannot perturb a run: goldens stay
    // byte-identical with or without a scraper.

    /// Requests waiting in worker queues across a service's `Up` and
    /// `Draining` instances — queued only, excluding the ones running.
    pub fn service_queue_depth(&self, service: ServiceId) -> u64 {
        self.cluster.services[service.0 as usize]
            .instances
            .iter()
            .map(|i| self.cluster.instances[i.0 as usize].queue.len() as u64)
            .sum()
    }

    /// Aggregated connection-pool state held by `from`'s instances toward
    /// `target`, or `None` if no such pool has been opened yet.
    pub fn conn_pool(&self, from: ServiceId, target: ServiceId) -> Option<ConnPoolSnapshot> {
        let mut snap = ConnPoolSnapshot::default();
        let mut any = false;
        for id in &self.cluster.services[from.0 as usize].instances {
            if let Some(pool) = self.cluster.instances[id.0 as usize].conns.get(&target) {
                any = true;
                snap.in_use += pool.in_use as u64;
                snap.limit += pool.limit as u64;
                snap.waiters += pool.waiters.len() as u64;
            }
        }
        any.then_some(snap)
    }

    /// Downstream services toward which `service`'s instances currently
    /// hold connection pools, in stable id order.
    pub fn conn_pool_targets(&self, service: ServiceId) -> Vec<ServiceId> {
        let mut targets: Vec<ServiceId> = Vec::new();
        for id in &self.cluster.services[service.0 as usize].instances {
            for &t in self.cluster.instances[id.0 as usize].conns.keys() {
                if !targets.contains(&t) {
                    targets.push(t);
                }
            }
        }
        targets.sort_unstable_by_key(|t| t.0);
        targets
    }

    /// Cores of machine `m` currently executing jobs.
    pub fn machine_busy_cores(&self, m: MachineId) -> u32 {
        self.cluster.machines[m.0 as usize].busy
    }

    /// Total cores of machine `m`.
    pub fn machine_cores(&self, m: MachineId) -> u32 {
        self.cluster.machines[m.0 as usize].cores
    }

    /// Jobs waiting in machine `m`'s run queue (preempted or not yet
    /// scheduled onto a core).
    pub fn machine_run_queue(&self, m: MachineId) -> usize {
        self.cluster.machines[m.0 as usize].run_queue.len()
    }

    /// Number of request-type slots with statistics so far (indexable via
    /// [`Simulation::request_stats`]).
    pub fn request_type_count(&self) -> usize {
        self.cluster.request_stats.len()
    }

    // -- Control surface -----------------------------------------------------

    /// Starts a new instance; it joins rotation after the configured
    /// startup delay. Returns its id.
    pub fn add_instance(&mut self, service: ServiceId) -> InstanceId {
        let id = self
            .cluster
            .spawn_instance(service, InstanceState::Starting);
        let delay = self.cluster.instance_startup;
        self.sched.schedule_in(delay, Ev::InstanceUp { inst: id });
        id
    }

    /// Starts a new instance that is immediately up (for initial
    /// provisioning before the run).
    pub fn add_instance_now(&mut self, service: ServiceId) -> InstanceId {
        self.cluster.spawn_instance(service, InstanceState::Up)
    }

    /// Removes an instance from rotation (it drains its queue).
    ///
    /// # Panics
    ///
    /// Panics if this would leave the service with no `Up` instance.
    pub fn retire_instance(&mut self, inst: InstanceId) {
        let service = self.cluster.instances[inst.0 as usize].service;
        let ups = self.instance_count(service);
        assert!(ups > 1, "cannot retire the last instance");
        self.cluster.instances[inst.0 as usize].state = InstanceState::Draining;
    }

    /// The newest instance ids of a service (for targeted retirement).
    pub fn instances_of(&self, service: ServiceId) -> Vec<InstanceId> {
        self.cluster.services[service.0 as usize].instances.clone()
    }

    /// Completed invocations served by one instance — the per-shard load
    /// split for `Partition` services.
    pub fn instance_served(&self, inst: InstanceId) -> u64 {
        self.cluster.instances[inst.0 as usize].served
    }

    /// Sets the operating frequency of one machine (RAPL / slow server).
    pub fn set_frequency(&mut self, m: MachineId, ghz: f64) {
        let core = self.cluster.machines[m.0 as usize].core;
        self.cluster.machines[m.0 as usize].core = core.at_frequency(ghz);
        self.cluster.rebuild_core_caches();
    }

    /// Sets the operating frequency of every machine.
    pub fn set_all_frequencies(&mut self, ghz: f64) {
        for i in 0..self.cluster.machines.len() {
            self.set_frequency(MachineId(i as u32), ghz);
        }
    }

    /// Installs (or removes) the FPGA RPC accelerator on every machine.
    pub fn set_offload(&mut self, offload: FpgaOffload) {
        for m in &mut self.cluster.machines {
            m.offload = offload;
        }
    }

    /// Routes *all* traffic for a service to one instance (models the
    /// Fig. 22a switch misconfiguration). `None` restores load balancing.
    pub fn pin_service(&mut self, service: ServiceId, to: Option<InstanceId>) {
        self.cluster.services[service.0 as usize].pinned = to;
    }

    /// Admission probability for new requests (rate limiting; 1.0 = all).
    pub fn set_admission(&mut self, prob: f64) {
        self.cluster.admit_prob = prob.clamp(0.0, 1.0);
    }

    /// Changes the load-balancing policy of a service at runtime (e.g.
    /// to model sticky sessions / per-user data affinity).
    pub fn set_lb_policy(&mut self, service: ServiceId, lb: LbPolicy) {
        self.cluster.services[service.0 as usize].spec.lb = lb;
    }

    /// Changes the connection limit callers enforce toward `service`
    /// (applies to existing pools too).
    pub fn set_conn_limit(&mut self, service: ServiceId, limit: u32) {
        self.cluster.services[service.0 as usize].spec.conn_limit = limit.max(1);
        for inst in &mut self.cluster.instances {
            if let Some(pool) = inst.conns.get_mut(&service) {
                pool.limit = limit.max(1);
            }
        }
    }

    /// The machine the placement layer assigned to an instance.
    pub fn instance_machine(&self, inst: InstanceId) -> MachineId {
        self.cluster.instances[inst.0 as usize].machine
    }

    /// The zone a service's first instance runs in (placement inspection).
    pub fn service_zone(&self, service: ServiceId) -> Option<Zone> {
        self.cluster.services[service.0 as usize]
            .instances
            .first()
            .map(|i| {
                let m = self.cluster.instances[i.0 as usize].machine;
                self.cluster.machines[m.0 as usize].zone
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::AppBuilder;
    use dsb_simcore::Dist;

    fn one_service_app(workers: u32, blocking: bool) -> (AppSpec, EndpointRef) {
        let mut app = AppBuilder::new("t");
        let mut b = app.service("svc").workers(workers);
        if !blocking {
            b = b.event_driven();
        }
        let svc = b.build();
        let ep = app.endpoint(
            svc,
            "op",
            Dist::constant(256.0),
            vec![Step::Compute {
                ns: Dist::constant(100_000.0),
                domain: ExecDomain::User,
            }],
        );
        (app.build(), ep)
    }

    fn small_cluster() -> ClusterSpec {
        ClusterSpec::xeon_cluster(2, 1)
    }

    #[test]
    fn request_completes_with_plausible_latency() {
        let (app, ep) = one_service_app(4, true);
        let mut sim = Simulation::new(app, small_cluster(), 7);
        sim.inject(SimTime::ZERO, ep, RequestType(0), 128, 1);
        sim.run_until_idle();
        let st = sim.request_stats(RequestType(0)).unwrap();
        assert_eq!(st.completed, 1);
        let lat = st.latency.quantile(1.0);
        // 100us compute + 2x client hops (~120us each) + processing.
        assert!(lat > 300_000, "latency {lat}ns too small");
        assert!(lat < 2_000_000, "latency {lat}ns too large");
    }

    #[test]
    fn two_tier_call_chain_works() {
        let mut app = AppBuilder::new("chain");
        let back = app.service("back").workers(8).build();
        let get = app.endpoint(
            back,
            "get",
            Dist::constant(512.0),
            vec![Step::work_us(20.0)],
        );
        let front = app.service("front").workers(8).build();
        let root = app.endpoint(
            front,
            "root",
            Dist::constant(1024.0),
            vec![Step::work_us(10.0), Step::call(get, 128.0)],
        );
        let mut sim = Simulation::new(app.build(), small_cluster(), 3);
        for i in 0..50 {
            sim.inject(SimTime::from_millis(i), root, RequestType(0), 256, i);
        }
        sim.run_until_idle();
        assert_eq!(sim.request_stats(RequestType(0)).unwrap().completed, 50);
        // Both services saw invocations and accumulated stats.
        assert_eq!(sim.service_stats(front).invocations, 50);
        assert_eq!(sim.service_stats(back).invocations, 50);
        assert!(sim.service_stats(back).total_time_ns() > 0.0);
        // Network processing time was charged to the kernel domain.
        assert!(sim.service_stats(front).time_ns[ExecDomain::Kernel.index()] > 0.0);
    }

    #[test]
    fn worker_limit_queues_requests() {
        // 1 blocking worker, 100us compute each: 10 simultaneous requests
        // must serialize -> last latency ~ 10x first.
        let (app, ep) = one_service_app(1, true);
        let mut sim = Simulation::new(app, small_cluster(), 1);
        for i in 0..10 {
            sim.inject(SimTime::ZERO, ep, RequestType(0), 128, i);
        }
        sim.run_until_idle();
        let st = sim.request_stats(RequestType(0)).unwrap();
        assert_eq!(st.completed, 10);
        let min = st.latency.min();
        let max = st.latency.max();
        assert!(
            max > min + 800_000,
            "expected serialization: min {min} max {max}"
        );
    }

    #[test]
    fn parallel_fanout_joins() {
        let mut app = AppBuilder::new("fan");
        let leaf = app.service("leaf").workers(64).build();
        let get = app.endpoint(
            leaf,
            "get",
            Dist::constant(128.0),
            vec![Step::work_us(30.0)],
        );
        let front = app.service("front").workers(8).build();
        let root = app.endpoint(
            front,
            "root",
            Dist::constant(512.0),
            vec![Step::FanCall {
                target: get,
                req_bytes: Dist::constant(64.0),
                n: Dist::constant(8.0),
            }],
        );
        let mut sim = Simulation::new(app.build(), small_cluster(), 5);
        sim.inject(SimTime::ZERO, root, RequestType(0), 128, 1);
        sim.run_until_idle();
        assert_eq!(sim.request_stats(RequestType(0)).unwrap().completed, 1);
        assert_eq!(sim.service_stats(leaf).invocations, 8);
        // Parallel: total latency far below 8 sequential round trips.
        let lat = sim.request_stats(RequestType(0)).unwrap().latency.max();
        assert!(lat < 8 * 150_000, "fan-out not parallel: {lat}ns");
    }

    #[test]
    fn zero_fanout_skips_calls() {
        let mut app = AppBuilder::new("fan0");
        let leaf = app.service("leaf").workers(4).build();
        let get = app.endpoint(leaf, "get", Dist::constant(128.0), vec![]);
        let front = app.service("front").workers(4).build();
        let root = app.endpoint(
            front,
            "root",
            Dist::constant(128.0),
            vec![
                Step::FanCall {
                    target: get,
                    req_bytes: Dist::constant(64.0),
                    n: Dist::constant(0.0),
                },
                Step::work_us(5.0),
            ],
        );
        let mut sim = Simulation::new(app.build(), small_cluster(), 5);
        sim.inject(SimTime::ZERO, root, RequestType(0), 128, 1);
        sim.run_until_idle();
        assert_eq!(sim.request_stats(RequestType(0)).unwrap().completed, 1);
        assert_eq!(sim.service_stats(leaf).invocations, 0);
    }

    #[test]
    fn branch_probability_respected() {
        let mut app = AppBuilder::new("br");
        let a = app.service("a").workers(16).build();
        let hit = app.endpoint(a, "hit", Dist::constant(64.0), vec![]);
        let b = app.service("b").workers(16).build();
        let miss = app.endpoint(b, "miss", Dist::constant(64.0), vec![]);
        let front = app.service("front").workers(64).build();
        let root = app.endpoint(
            front,
            "root",
            Dist::constant(64.0),
            vec![Step::Branch {
                p: 0.8,
                then: Arc::new(vec![Step::call(hit, 64.0)]),
                els: Arc::new(vec![Step::call(miss, 64.0)]),
            }],
        );
        let mut sim = Simulation::new(app.build(), small_cluster(), 11);
        for i in 0..1000 {
            sim.inject(SimTime::from_micros(i * 500), root, RequestType(0), 64, i);
        }
        sim.run_until_idle();
        let hits = sim.service_stats(a).invocations;
        let misses = sim.service_stats(b).invocations;
        assert_eq!(hits + misses, 1000);
        assert!((700..900).contains(&hits), "hits {hits}");
    }

    #[test]
    fn blocking_connection_pool_limits_concurrency() {
        // Front (blocking, many workers) -> back over HTTP/1 with
        // conn_limit 1 and slow 1ms handler: calls serialize even though
        // back has plenty of workers.
        let mut app = AppBuilder::new("conn");
        let back = app
            .service("back")
            .workers(32)
            .protocol(Protocol::Http1)
            .conn_limit(1)
            .build();
        let get = app.endpoint(
            back,
            "get",
            Dist::constant(128.0),
            vec![Step::Compute {
                ns: Dist::constant(1_000_000.0),
                domain: ExecDomain::User,
            }],
        );
        let front = app.service("front").workers(32).instances(1).build();
        let root = app.endpoint(
            front,
            "root",
            Dist::constant(128.0),
            vec![Step::call(get, 64.0)],
        );
        let mut sim = Simulation::new(app.build(), small_cluster(), 2);
        for i in 0..8 {
            sim.inject(SimTime::ZERO, root, RequestType(0), 64, i);
        }
        sim.run_until_idle();
        let st = sim.request_stats(RequestType(0)).unwrap();
        assert_eq!(st.completed, 8);
        // Serialized over one connection: ~8ms of back-end compute total.
        assert!(
            st.latency.max() > 7_000_000,
            "expected head-of-line blocking, max {}",
            st.latency.max()
        );
    }

    #[test]
    fn occupancy_reflects_blocked_workers() {
        // Blocking front waiting on a slow back-end counts as busy.
        let mut app = AppBuilder::new("occ");
        let back = app.service("back").workers(1).build();
        let get = app.endpoint(
            back,
            "get",
            Dist::constant(128.0),
            vec![Step::Io {
                ns: Dist::constant(1e9), // 1s io
            }],
        );
        let front = app.service("front").workers(4).build();
        let root = app.endpoint(
            front,
            "root",
            Dist::constant(128.0),
            vec![Step::call(get, 64.0)],
        );
        let mut sim = Simulation::new(app.build(), small_cluster(), 2);
        for i in 0..4 {
            sim.inject(SimTime::ZERO, root, RequestType(0), 64, i);
        }
        sim.advance_to(SimTime::from_millis(500));
        assert!(
            sim.occupancy(front) >= 0.99,
            "front occupancy {}",
            sim.occupancy(front)
        );
        sim.run_until_idle();
        assert_eq!(sim.occupancy(front), 0.0);
    }

    #[test]
    fn on_demand_workers_cold_start_then_serve() {
        let mut app = AppBuilder::new("svc-less");
        let f = app
            .service("fn")
            .on_demand_workers(Dist::constant(100_000_000.0)) // 100ms cold
            .build();
        let ep = app.endpoint(f, "run", Dist::constant(128.0), vec![Step::work_us(10.0)]);
        let mut sim = Simulation::new(app.build(), small_cluster(), 4);
        sim.inject(SimTime::ZERO, ep, RequestType(0), 64, 1);
        // Second request arrives after the first finished: warm start.
        sim.inject(SimTime::from_millis(500), ep, RequestType(0), 64, 2);
        sim.run_until_idle();
        let st = sim.request_stats(RequestType(0)).unwrap();
        assert_eq!(st.completed, 2);
        let cold = st.latency.max();
        let warm = st.latency.min();
        assert!(cold > 100_000_000, "cold {cold}");
        assert!(warm < 5_000_000, "warm {warm}");
    }

    #[test]
    fn pinning_routes_all_traffic_to_one_instance() {
        let mut app = AppBuilder::new("pin");
        let svc = app.service("s").workers(4).instances(4).build();
        let ep = app.endpoint(svc, "op", Dist::constant(64.0), vec![Step::work_us(5.0)]);
        let mut sim = Simulation::new(app.build(), ClusterSpec::xeon_cluster(4, 1), 9);
        let victim = sim.instances_of(svc)[0];
        sim.pin_service(svc, Some(victim));
        for i in 0..40 {
            sim.inject(SimTime::from_micros(i * 100), ep, RequestType(0), 64, i);
        }
        sim.run_until_idle();
        assert_eq!(sim.request_stats(RequestType(0)).unwrap().completed, 40);
        // Unpin and confirm spread resumes (no panic, work completes).
        sim.pin_service(svc, None);
        for i in 0..40 {
            sim.inject(
                sim.now() + SimDuration::from_micros(i * 100),
                ep,
                RequestType(0),
                64,
                i,
            );
        }
        sim.run_until_idle();
        assert_eq!(sim.request_stats(RequestType(0)).unwrap().completed, 80);
    }

    #[test]
    fn frequency_scaling_slows_completion() {
        let (app, ep) = one_service_app(4, true);
        let run = |ghz: f64| {
            let (app2, _) = one_service_app(4, true);
            let _ = app2;
            let mut sim = Simulation::new(
                {
                    let (a, _) = one_service_app(4, true);
                    a
                },
                small_cluster(),
                1,
            );
            sim.set_all_frequencies(ghz);
            sim.inject(SimTime::ZERO, ep, RequestType(0), 64, 1);
            sim.run_until_idle();
            sim.request_stats(RequestType(0)).unwrap().latency.max()
        };
        let _ = app;
        let fast = run(2.4);
        let slow = run(1.0);
        assert!(
            slow as f64 > fast as f64 * 1.2,
            "slow {slow} vs fast {fast}"
        );
    }

    #[test]
    fn add_instance_joins_after_startup_delay() {
        let mut app = AppBuilder::new("scale");
        let svc = app.service("s").workers(2).build();
        let ep = app.endpoint(svc, "op", Dist::constant(64.0), vec![Step::work_us(10.0)]);
        let mut sim = Simulation::new(app.build(), small_cluster(), 6);
        assert_eq!(sim.instance_count(svc), 1);
        sim.add_instance(svc);
        assert_eq!(sim.instance_count(svc), 1); // still starting
        sim.advance_to(SimTime::from_secs(10));
        assert_eq!(sim.instance_count(svc), 2);
        sim.inject(sim.now(), ep, RequestType(0), 64, 1);
        sim.run_until_idle();
        assert_eq!(sim.request_stats(RequestType(0)).unwrap().completed, 1);
    }

    #[test]
    fn retire_instance_drains() {
        let mut app = AppBuilder::new("ret");
        let svc = app.service("s").workers(2).instances(2).build();
        let ep = app.endpoint(svc, "op", Dist::constant(64.0), vec![Step::work_us(10.0)]);
        let mut sim = Simulation::new(app.build(), small_cluster(), 6);
        let insts = sim.instances_of(svc);
        sim.retire_instance(insts[0]);
        assert_eq!(sim.instance_count(svc), 1);
        for i in 0..20 {
            sim.inject(SimTime::from_micros(i), ep, RequestType(0), 64, i);
        }
        sim.run_until_idle();
        assert_eq!(sim.request_stats(RequestType(0)).unwrap().completed, 20);
    }

    #[test]
    #[should_panic(expected = "cannot retire the last instance")]
    fn retiring_last_instance_panics() {
        let mut app = AppBuilder::new("ret2");
        let svc = app.service("s").build();
        app.endpoint(svc, "op", Dist::constant(64.0), vec![]);
        let mut sim = Simulation::new(app.build(), small_cluster(), 6);
        let insts = sim.instances_of(svc);
        sim.retire_instance(insts[0]);
    }

    #[test]
    fn admission_control_rejects() {
        let (app, ep) = one_service_app(8, true);
        let mut sim = Simulation::new(app, small_cluster(), 8);
        sim.set_admission(0.0);
        for i in 0..10 {
            sim.inject(SimTime::from_micros(i), ep, RequestType(0), 64, i);
        }
        sim.run_until_idle();
        let st = sim.request_stats(RequestType(0)).unwrap();
        assert_eq!(st.issued, 10);
        assert_eq!(st.rejected, 10);
        assert_eq!(st.completed, 0);
    }

    #[test]
    fn spans_reach_collector_with_parents() {
        let mut app = AppBuilder::new("tr");
        let back = app.service("back").workers(4).build();
        let get = app.endpoint(back, "get", Dist::constant(64.0), vec![Step::work_us(5.0)]);
        let front = app.service("front").workers(4).build();
        let root = app.endpoint(
            front,
            "root",
            Dist::constant(64.0),
            vec![Step::call(get, 64.0)],
        );
        let mut app_spec = app.build();
        let _ = &mut app_spec;
        let mut cluster = small_cluster();
        cluster.trace_sample_prob = 1.0;
        let mut sim = Simulation::new(app_spec, cluster, 12);
        sim.inject(SimTime::ZERO, root, RequestType(0), 64, 1);
        sim.run_until_idle();
        let traces: Vec<_> = sim.collector().sampled_traces().collect();
        assert_eq!(traces.len(), 1);
        let spans = traces[0].1;
        assert_eq!(spans.len(), 2);
        let root_span = spans.iter().find(|s| s.parent.is_none()).unwrap();
        let child = spans.iter().find(|s| s.parent.is_some()).unwrap();
        assert_eq!(child.parent, Some(root_span.id));
        assert_eq!(root_span.service, front.0);
        assert_eq!(child.service, back.0);
        assert!(child.start >= root_span.start);
        assert!(child.end <= root_span.end);
    }

    #[test]
    fn determinism_same_seed_same_results() {
        let run = |seed| {
            let (app, ep) = one_service_app(4, true);
            let mut sim = Simulation::new(app, small_cluster(), seed);
            for i in 0..200 {
                sim.inject(SimTime::from_micros(i * 50), ep, RequestType(0), 64, i);
            }
            sim.run_until_idle();
            let st = sim.request_stats(RequestType(0)).unwrap();
            (
                st.latency.mean(),
                st.latency.quantile(0.99),
                sim.events_processed(),
            )
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn partition_lb_concentrates_hot_keys() {
        let mut app = AppBuilder::new("shard");
        let svc = app
            .service("s")
            .workers(1)
            .instances(4)
            .lb(LbPolicy::Partition)
            .build();
        let ep = app.endpoint(
            svc,
            "op",
            Dist::constant(64.0),
            vec![Step::Compute {
                ns: Dist::constant(200_000.0),
                domain: ExecDomain::User,
            }],
        );
        let mut sim = Simulation::new(app.build(), ClusterSpec::xeon_cluster(4, 1), 10);
        // All requests share one key -> one shard serializes them.
        for i in 0..20 {
            sim.inject(SimTime::ZERO, ep, RequestType(0), 64, 777);
            let _ = i;
        }
        sim.run_until_idle();
        let st = sim.request_stats(RequestType(0)).unwrap();
        assert!(
            st.latency.max() > 3_000_000,
            "hot shard should serialize: {}",
            st.latency.max()
        );
        // Spread keys -> parallel across shards, much faster.
        let mut app2 = AppBuilder::new("shard2");
        let svc2 = app2
            .service("s")
            .workers(1)
            .instances(4)
            .lb(LbPolicy::Partition)
            .build();
        let ep2 = app2.endpoint(
            svc2,
            "op",
            Dist::constant(64.0),
            vec![Step::Compute {
                ns: Dist::constant(200_000.0),
                domain: ExecDomain::User,
            }],
        );
        let mut sim2 = Simulation::new(app2.build(), ClusterSpec::xeon_cluster(4, 1), 10);
        for i in 0..20u64 {
            sim2.inject(SimTime::ZERO, ep2, RequestType(0), 64, i * 7919);
        }
        sim2.run_until_idle();
        let st2 = sim2.request_stats(RequestType(0)).unwrap();
        assert!(
            st2.latency.max() < st.latency.max(),
            "spread {} vs hot {}",
            st2.latency.max(),
            st.latency.max()
        );
    }

    #[test]
    fn offload_reduces_kernel_time() {
        let run = |offload: bool| {
            let mut app = AppBuilder::new("fpga");
            let back = app.service("back").workers(8).build();
            let get = app.endpoint(
                back,
                "get",
                Dist::constant(4096.0),
                vec![Step::work_us(5.0)],
            );
            let front = app.service("front").workers(8).build();
            let root = app.endpoint(
                front,
                "root",
                Dist::constant(1024.0),
                vec![Step::call(get, 2048.0)],
            );
            let mut sim = Simulation::new(app.build(), small_cluster(), 3);
            if offload {
                sim.set_offload(FpgaOffload::with_speedup(50.0));
            }
            for i in 0..100 {
                sim.inject(SimTime::from_micros(i * 100), root, RequestType(0), 256, i);
            }
            sim.run_until_idle();
            let front_kernel = sim.service_stats(front).time_ns[ExecDomain::Kernel.index()];
            let p99 = sim
                .request_stats(RequestType(0))
                .unwrap()
                .latency
                .quantile(0.99);
            (front_kernel, p99)
        };
        let (native_kernel, native_p99) = run(false);
        let (offload_kernel, offload_p99) = run(true);
        assert!(native_kernel > 0.0);
        assert_eq!(offload_kernel, 0.0, "offload must remove host kernel time");
        assert!(
            offload_p99 < native_p99,
            "offload {offload_p99} native {native_p99}"
        );
    }

    #[test]
    fn io_steps_insensitive_to_frequency() {
        let build = || {
            let mut app = AppBuilder::new("io");
            let svc = app.service("db").workers(8).build();
            let ep = app.endpoint(
                svc,
                "find",
                Dist::constant(64.0),
                vec![Step::Io {
                    ns: Dist::constant(2_000_000.0),
                }],
            );
            (app.build(), ep)
        };
        let run = |ghz: f64| {
            let (app, ep) = build();
            let mut sim = Simulation::new(app, small_cluster(), 2);
            sim.set_all_frequencies(ghz);
            sim.inject(SimTime::ZERO, ep, RequestType(0), 64, 1);
            sim.run_until_idle();
            sim.request_stats(RequestType(0)).unwrap().latency.max() as f64
        };
        let fast = run(2.4);
        let slow = run(1.0);
        // Only the (small) network processing scales; I/O dominates.
        assert!(
            slow / fast < 1.3,
            "io-bound should tolerate slow cores: {slow} vs {fast}"
        );
    }
}
