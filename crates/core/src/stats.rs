//! Runtime statistics: per-service execution accounting and per-request-
//! type latency.

use dsb_simcore::{Histogram, SimDuration, SimTime, WindowedSeries};
use dsb_uarch::ExecDomain;

/// Execution accounting for one service, across all of its instances.
///
/// Every compute job charges its duration to an [`ExecDomain`] bucket, in
/// three currencies: actual core-time nanoseconds, cycles (time × the
/// executing core's frequency), and instructions (derived from the
/// reference-core time and the service's IPC there). Figs. 3, 10 and 14
/// are read straight out of these counters.
#[derive(Debug, Clone)]
pub struct ServiceStats {
    /// Core-busy nanoseconds per domain.
    pub time_ns: [f64; 4],
    /// Cycles per domain.
    pub cycles: [f64; 4],
    /// Instructions per domain.
    pub instructions: [f64; 4],
    /// Completed invocations.
    pub invocations: u64,
    /// Completed invocations per endpoint index (grows on demand; an
    /// endpoint that never completed may be absent). Lets tests assert
    /// that e.g. both halves of a cache's get/set pair see traffic.
    pub endpoint_invocations: Vec<u64>,
    /// Requests dropped at this service (admission control).
    pub dropped: u64,
    /// Cache lookups forced to the miss path because the request's home
    /// shard of this (cache) service was down or refilling cold after a
    /// `ChaosPlan` fault. Always 0 for non-cache tiers and fault-free
    /// runs.
    pub refill_misses: u64,
    /// Per-window worker occupancy (busy worker-time), for utilization
    /// heatmaps and the autoscaler's (misleading) signal.
    pub worker_busy: WindowedSeries,
}

impl ServiceStats {
    pub(crate) fn new(window: SimDuration) -> Self {
        ServiceStats {
            time_ns: [0.0; 4],
            cycles: [0.0; 4],
            instructions: [0.0; 4],
            invocations: 0,
            endpoint_invocations: Vec::new(),
            dropped: 0,
            refill_misses: 0,
            worker_busy: WindowedSeries::new(window),
        }
    }

    pub(crate) fn charge(
        &mut self,
        domain: ExecDomain,
        actual_ns: f64,
        freq_ghz: f64,
        ref_ns: f64,
        ref_ipc: f64,
        ref_freq_ghz: f64,
    ) {
        let d = domain.index();
        self.time_ns[d] += actual_ns;
        self.cycles[d] += actual_ns * freq_ghz;
        self.instructions[d] += ref_ns * ref_freq_ghz * ref_ipc;
    }

    /// Folds another shard's accounting for the same service into this
    /// one. Summation order is the caller's responsibility: merging
    /// shards in a fixed order (0, 1, 2, …) keeps the floating-point
    /// sums bit-identical across runs and worker counts.
    pub(crate) fn merge(&mut self, other: &ServiceStats) {
        for d in 0..4 {
            self.time_ns[d] += other.time_ns[d];
            self.cycles[d] += other.cycles[d];
            self.instructions[d] += other.instructions[d];
        }
        self.invocations += other.invocations;
        if other.endpoint_invocations.len() > self.endpoint_invocations.len() {
            self.endpoint_invocations
                .resize(other.endpoint_invocations.len(), 0);
        }
        for (a, &b) in self
            .endpoint_invocations
            .iter_mut()
            .zip(&other.endpoint_invocations)
        {
            *a += b;
        }
        self.dropped += other.dropped;
        self.refill_misses += other.refill_misses;
        self.worker_busy.merge(&other.worker_busy);
    }

    /// Completed invocations of endpoint index `e` (0 if none completed).
    pub fn endpoint_count(&self, e: usize) -> u64 {
        self.endpoint_invocations.get(e).copied().unwrap_or(0)
    }

    /// Total core-busy nanoseconds across domains.
    pub fn total_time_ns(&self) -> f64 {
        self.time_ns.iter().sum()
    }

    /// Fraction of core time in the given domain (0 if no time recorded).
    pub fn time_fraction(&self, domain: ExecDomain) -> f64 {
        let total = self.total_time_ns();
        if total == 0.0 {
            0.0
        } else {
            self.time_ns[domain.index()] / total
        }
    }

    /// Fraction of cycles in the given domain.
    pub fn cycle_fraction(&self, domain: ExecDomain) -> f64 {
        let total: f64 = self.cycles.iter().sum();
        if total == 0.0 {
            0.0
        } else {
            self.cycles[domain.index()] / total
        }
    }

    /// Fraction of instructions in the given domain.
    pub fn instruction_fraction(&self, domain: ExecDomain) -> f64 {
        let total: f64 = self.instructions.iter().sum();
        if total == 0.0 {
            0.0
        } else {
            self.instructions[domain.index()] / total
        }
    }

    /// Effective IPC over the run (instructions / cycles).
    pub fn effective_ipc(&self) -> f64 {
        let cycles: f64 = self.cycles.iter().sum();
        if cycles == 0.0 {
            0.0
        } else {
            self.instructions.iter().sum::<f64>() / cycles
        }
    }
}

/// End-to-end latency statistics for one request type.
#[derive(Debug, Clone)]
pub struct RequestStats {
    /// Requests injected.
    pub issued: u64,
    /// Requests completed (response reached the client).
    pub completed: u64,
    /// Requests rejected by admission control.
    pub rejected: u64,
    /// Requests that failed fast: some tier on the request's path was
    /// crashed, partitioned away, or had no live instance, and the error
    /// propagated back to the client instead of a response. Always 0
    /// without an installed `ChaosPlan`.
    pub failed: u64,
    /// End-to-end latency distribution, ns.
    pub latency: Histogram,
    /// Per-window latency (ns), for timelines.
    pub windows: WindowedSeries,
}

impl RequestStats {
    pub(crate) fn new(window: SimDuration) -> Self {
        RequestStats {
            issued: 0,
            completed: 0,
            rejected: 0,
            failed: 0,
            latency: Histogram::default(),
            windows: WindowedSeries::new(window),
        }
    }

    pub(crate) fn complete(&mut self, at: SimTime, latency: SimDuration) {
        self.completed += 1;
        self.latency.record(latency.as_nanos());
        self.windows.record(at, latency.as_nanos());
    }

    pub(crate) fn fail(&mut self, _at: SimTime) {
        self.failed += 1;
    }

    /// The p99 end-to-end latency over the whole run.
    pub fn p99(&self) -> SimDuration {
        self.latency.quantile_duration(0.99)
    }

    /// Fraction of issued requests that completed.
    pub fn completion_rate(&self) -> f64 {
        if self.issued == 0 {
            0.0
        } else {
            self.completed as f64 / self.issued as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_accumulates_three_currencies() {
        let mut s = ServiceStats::new(SimDuration::from_secs(1));
        s.charge(ExecDomain::Kernel, 1000.0, 2.4, 800.0, 1.5, 2.4);
        s.charge(ExecDomain::User, 3000.0, 2.4, 3000.0, 1.5, 2.4);
        assert_eq!(s.time_ns[ExecDomain::Kernel.index()], 1000.0);
        assert!((s.cycles[ExecDomain::Kernel.index()] - 2400.0).abs() < 1e-9);
        assert!((s.instructions[ExecDomain::User.index()] - 10800.0).abs() < 1e-9);
        assert!((s.time_fraction(ExecDomain::User) - 0.75).abs() < 1e-9);
        assert!((s.cycle_fraction(ExecDomain::User) - 0.75).abs() < 1e-9);
        let f = s.instruction_fraction(ExecDomain::Kernel);
        assert!(f > 0.0 && f < 1.0);
        assert!(s.effective_ipc() > 0.0);
    }

    #[test]
    fn fractions_zero_when_empty() {
        let s = ServiceStats::new(SimDuration::from_secs(1));
        assert_eq!(s.time_fraction(ExecDomain::User), 0.0);
        assert_eq!(s.cycle_fraction(ExecDomain::User), 0.0);
        assert_eq!(s.effective_ipc(), 0.0);
    }

    #[test]
    fn request_stats_latency() {
        let mut r = RequestStats::new(SimDuration::from_secs(1));
        r.issued = 2;
        r.complete(SimTime::from_millis(10), SimDuration::from_millis(5));
        assert_eq!(r.completed, 1);
        assert_eq!(r.completion_rate(), 0.5);
        assert!(r.p99() >= SimDuration::from_millis(4));
        assert_eq!(r.windows.count(0), 1);
    }
}
