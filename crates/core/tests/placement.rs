//! Placement-layer contracts: instance-to-machine assignment is a pure
//! function of the cluster and provisioning order (no seed involved), it
//! matches the analyzer's static [`PlacementPlan`] exactly, it respects
//! per-machine core budgets whenever the cluster can fit the app, it
//! honors `zone_pref`, and — mirroring the shard-stable partition
//! routing — scaling out never relocates an already-placed instance.

use std::collections::BTreeMap;

use dsb_core::{
    AppBuilder, AppSpec, ClusterSpec, InstanceId, MachineId, MachineSpec, PlacementPlan, ServiceId,
    Simulation,
};
use dsb_net::Zone;
use dsb_simcore::{Dist, Rng};
use dsb_testkit::{gen, prop, prop_assert, prop_assert_eq, Shrink};

/// A random app: per service a worker count, an instance count, and an
/// optional edge pin. `uniform_demand` forces every service to the same
/// worker count (so first-fit packing is loss-free in the budget test).
#[derive(Debug, Clone, PartialEq)]
struct Case {
    machines: u32,
    edge_devices: u32,
    workers: Vec<u32>,
    instances: Vec<u32>,
    edge: Vec<bool>,
}

impl Shrink for Case {
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        if self.workers.len() > 2 {
            let mut c = self.clone();
            c.workers.pop();
            c.instances.pop();
            c.edge.pop();
            out.push(c);
        }
        for (i, &n) in self.instances.iter().enumerate() {
            if n > 1 {
                let mut c = self.clone();
                c.instances[i] = n - 1;
                out.push(c);
            }
        }
        for (i, &e) in self.edge.iter().enumerate() {
            if e {
                let mut c = self.clone();
                c.edge[i] = false;
                out.push(c);
            }
        }
        out
    }
}

fn arb_case(rng: &mut Rng) -> Case {
    let services = gen::usize_in(rng, 2, 6);
    Case {
        machines: gen::u32_in(rng, 2, 4),
        edge_devices: gen::u32_in(rng, 2, 4),
        workers: (0..services)
            .map(|_| *gen::choice(rng, &[1, 2, 4, 8]))
            .collect(),
        instances: (0..services).map(|_| gen::u32_in(rng, 1, 3)).collect(),
        edge: (0..services).map(|_| gen::u64_in(rng, 0, 3) == 0).collect(),
    }
}

fn build(case: &Case) -> (AppSpec, ClusterSpec) {
    let mut app = AppBuilder::new("placed");
    for (i, (&w, &n)) in case.workers.iter().zip(&case.instances).enumerate() {
        let mut b = app.service(&format!("s{i}")).workers(w).instances(n);
        if case.edge[i] {
            b = b.zone(Zone::Edge);
        }
        let id = b.build();
        app.endpoint(id, "run", Dist::constant(64.0), vec![]);
    }
    let mut cluster = ClusterSpec::xeon_cluster(case.machines, 1);
    for m in &mut cluster.machines {
        m.cores = 8;
    }
    for _ in 0..case.edge_devices {
        cluster.machines.push(MachineSpec::edge_device());
    }
    cluster.trace_sample_prob = 0.0;
    (app.build(), cluster)
}

/// `instance -> machine` as the simulator assigned it.
fn sim_assignment(sim: &Simulation, spec: &AppSpec) -> BTreeMap<InstanceId, MachineId> {
    let mut out = BTreeMap::new();
    for s in 0..spec.services.len() {
        for inst in sim.instances_of(ServiceId(s as u32)) {
            out.insert(inst, sim.instance_machine(inst));
        }
    }
    out
}

#[test]
fn placement_is_seed_free_and_matches_the_static_plan() {
    prop!(cases = 32, arb_case, |case: &Case| {
        let (spec, cluster) = build(case);
        let a = Simulation::new(spec.clone(), cluster.clone(), 1);
        let b = Simulation::new(spec.clone(), cluster.clone(), 0xDEAD_BEEF);
        let ma = sim_assignment(&a, &spec);
        prop_assert_eq!(
            &ma,
            &sim_assignment(&b, &spec),
            "placement depends on the seed"
        );
        let plan = PlacementPlan::compute(&spec, &cluster);
        for (&inst, &machine) in &ma {
            prop_assert_eq!(
                plan.machine_of(inst),
                machine,
                "static plan disagrees with the simulator at instance {}",
                inst.0
            );
        }
        prop_assert_eq!(ma.len(), plan.instances().len());
        Ok(())
    });
}

#[test]
fn zone_preferences_are_respected() {
    prop!(cases = 32, arb_case, |case: &Case| {
        let (spec, cluster) = build(case);
        let plan = PlacementPlan::compute(&spec, &cluster);
        for &(svc, m) in plan.instances() {
            let zone = cluster.machines[m.0 as usize].zone;
            if case.edge[svc.0 as usize] {
                prop_assert_eq!(zone, Zone::Edge, "edge-pinned service left the edge");
            } else {
                prop_assert!(
                    !matches!(zone, Zone::Edge),
                    "datacenter service placed on an edge device"
                );
            }
        }
        Ok(())
    });
}

/// When every service demands the same core count and the total fits
/// the cluster, first-fit must not overcommit any machine.
#[test]
fn core_budgets_hold_whenever_the_app_fits() {
    fn arb_uniform(rng: &mut Rng) -> Case {
        let mut case = arb_case(rng);
        let d = *gen::choice(rng, &[1, 2, 4, 8]);
        for w in &mut case.workers {
            *w = d;
        }
        // Datacenter demand only, trimmed until it fits the cluster.
        for e in &mut case.edge {
            *e = false;
        }
        let capacity = case.machines * 8;
        while case
            .workers
            .iter()
            .zip(&case.instances)
            .map(|(w, n)| w * n)
            .sum::<u32>()
            > capacity
        {
            let last = case.instances.len() - 1;
            if case.instances[last] > 1 {
                case.instances[last] -= 1;
            } else {
                case.workers.pop();
                case.instances.pop();
                case.edge.pop();
            }
        }
        case
    }
    prop!(cases = 32, arb_uniform, |case: &Case| {
        let (spec, cluster) = build(case);
        let plan = PlacementPlan::compute(&spec, &cluster);
        let mut used = vec![0u32; cluster.machines.len()];
        for &(svc, m) in plan.instances() {
            used[m.0 as usize] += case.workers[svc.0 as usize];
        }
        for (m, &u) in used.iter().enumerate() {
            prop_assert!(
                u <= cluster.machines[m].cores,
                "machine {} overcommitted ({} of {} cores) though the app fits",
                m,
                u,
                cluster.machines[m].cores
            );
        }
        Ok(())
    });
}

/// Mirrors `partition.rs`: adding instances never relocates an existing
/// one, and the newcomers still honor their zone preference.
#[test]
fn scale_out_never_relocates_existing_instances() {
    prop!(cases = 24, arb_case, |case: &Case| {
        let (spec, cluster) = build(case);
        let mut sim = Simulation::new(spec.clone(), cluster.clone(), 7);
        let before = sim_assignment(&sim, &spec);
        // Scale out every service once, round-robin, twice over.
        for round in 0..2 {
            for s in 0..spec.services.len() {
                let id = ServiceId(s as u32);
                let inst = sim.add_instance_now(id);
                let zone = cluster.machines[sim.instance_machine(inst).0 as usize].zone;
                prop_assert_eq!(
                    matches!(zone, Zone::Edge),
                    case.edge[s],
                    "scale-out round {} broke service {}'s zone preference",
                    round,
                    s
                );
            }
        }
        let after = sim_assignment(&sim, &spec);
        for (inst, machine) in &before {
            prop_assert_eq!(
                after.get(inst),
                Some(machine),
                "instance {} relocated by an unrelated scale-out",
                inst.0
            );
        }
        Ok(())
    });
}
