//! Partition load balancing: shard assignment must be a stable function
//! of the partition key over the *total* instance list, so that one
//! instance going down moves only that shard's keys (and every other
//! key stays where it was). Guards the `pick_instance` fix that stopped
//! hashing modulo the healthy-instance subset.

use dsb_core::{
    AppBuilder, AppSpec, ClusterSpec, EndpointRef, LbPolicy, RequestType, Simulation, Step,
};
use dsb_simcore::{Dist, Rng};
use dsb_testkit::{gen, prop, prop_assert, prop_assert_eq};

fn shard_app(shards: u32) -> (AppSpec, EndpointRef) {
    let mut app = AppBuilder::new("shards");
    let store = app
        .service("store")
        .workers(4)
        .instances(shards)
        .lb(LbPolicy::Partition)
        .build();
    let get = app.endpoint(store, "get", Dist::constant(64.0), vec![Step::work_us(5.0)]);
    (app.build(), get)
}

/// Routes each key once through a fresh simulation and reports which
/// shard served it, optionally retiring one instance before any
/// traffic. Attribution works by injecting keys one at a time and
/// diffing the per-instance served counters between injections.
fn mapping(shards: u32, keys: &[u64], retire: Option<usize>) -> Vec<usize> {
    let (spec, get) = shard_app(shards);
    let mut cluster = ClusterSpec::xeon_cluster(4, 1);
    cluster.trace_sample_prob = 0.0;
    let mut sim = Simulation::new(spec, cluster, 11);
    let insts = sim.instances_of(get.service);
    if let Some(r) = retire {
        sim.retire_instance(insts[r]);
    }
    let mut prev = vec![0u64; insts.len()];
    let mut out = Vec::with_capacity(keys.len());
    for &k in keys {
        sim.inject(sim.now(), get, RequestType(0), 64, k);
        sim.run_until_idle();
        let now: Vec<u64> = insts.iter().map(|i| sim.instance_served(*i)).collect();
        let hit = (0..insts.len())
            .find(|&i| now[i] != prev[i])
            .expect("exactly one shard served the key");
        assert_eq!(now[hit], prev[hit] + 1, "one request, one completion");
        prev = now;
        out.push(hit);
    }
    out
}

fn arb_case(rng: &mut Rng) -> (u32, usize, Vec<u64>) {
    let shards = gen::u32_in(rng, 2, 6);
    let retire = gen::usize_in(rng, 0, shards as usize - 1);
    let keys = gen::vec_with(rng, 8, 24, |r| gen::u64_in(r, 0, u64::MAX - 1));
    (shards, retire, keys)
}

/// Retiring one shard leaves every other shard's keys exactly where
/// they were, and re-routes the down shard's keys to live instances.
#[test]
fn partition_routing_stable_under_instance_failure() {
    prop!(cases = 24, arb_case, |case: &(u32, usize, Vec<u64>)| {
        let (shards, retire, keys) = case;
        let base = mapping(*shards, keys, None);
        let after = mapping(*shards, keys, Some(*retire));
        for (i, &k) in keys.iter().enumerate() {
            if base[i] == *retire {
                // The down shard's keys must fail over to a live shard.
                prop_assert!(
                    after[i] != *retire,
                    "key {k} still routed to retired shard {retire}"
                );
            } else {
                // Every other key must not move at all.
                prop_assert_eq!(
                    after[i],
                    base[i],
                    "key {} remapped {} -> {} when unrelated shard {} went down",
                    k,
                    base[i],
                    after[i],
                    retire
                );
            }
        }
        Ok(())
    });
}

/// With all instances up, the hash spreads keys over every shard.
#[test]
fn partition_routing_uses_all_shards() {
    let keys: Vec<u64> = (0..64u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .collect();
    let map = mapping(4, &keys, None);
    for shard in 0..4 {
        assert!(
            map.contains(&shard),
            "shard {shard} never selected across {} keys: {map:?}",
            keys.len()
        );
    }
}

/// The failover target itself is deterministic: probing forward from
/// the home shard, not rehashing — two runs agree exactly.
#[test]
fn partition_failover_is_deterministic() {
    let keys: Vec<u64> = (0..32u64)
        .map(|i| i.wrapping_mul(0xD1B5_4A32_D192_ED03))
        .collect();
    let a = mapping(5, &keys, Some(2));
    let b = mapping(5, &keys, Some(2));
    assert_eq!(a, b);
}
