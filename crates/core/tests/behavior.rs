//! Focused behavioural tests of `dsb-core` mechanisms that the paper's
//! experiments depend on: load-balancing policies, concurrency models,
//! draining, span semantics, and runtime reconfiguration.

use std::sync::Arc;

use dsb_core::{
    AppBuilder, AppSpec, ClusterSpec, Concurrency, EndpointRef, LbPolicy, RequestType, ServiceId,
    Simulation, Step,
};
use dsb_simcore::{Dist, SimDuration, SimTime};
use dsb_uarch::ExecDomain;

fn one_service(
    workers: u32,
    instances: u32,
    lb: LbPolicy,
    concurrency: Concurrency,
    work_us: f64,
) -> (AppSpec, EndpointRef, ServiceId) {
    let mut app = AppBuilder::new("t");
    let mut b = app
        .service("svc")
        .workers(workers)
        .instances(instances)
        .lb(lb);
    b = match concurrency {
        Concurrency::Async => b.event_driven(),
        Concurrency::Blocking => b.blocking(),
    };
    let svc = b.build();
    let ep = app.endpoint(
        svc,
        "op",
        Dist::constant(256.0),
        vec![Step::Compute {
            ns: Dist::constant(work_us * 1000.0),
            domain: ExecDomain::User,
        }],
    );
    (app.build(), ep, svc)
}

fn cluster(n: u32) -> ClusterSpec {
    let mut c = ClusterSpec::xeon_cluster(n, 1);
    c.trace_sample_prob = 1.0;
    c
}

#[test]
fn least_outstanding_balances_heterogeneous_instances() {
    // Two instances, one on a slow machine: LeastOutstanding shifts load
    // away from the slow one, RoundRobin does not.
    let run = |lb: LbPolicy| {
        let (spec, ep, _svc) = one_service(4, 2, lb, Concurrency::Blocking, 500.0);
        let mut sim = Simulation::new(spec, cluster(2), 3);
        sim.set_frequency(dsb_core::MachineId(0), 0.6);
        for i in 0..3000u64 {
            sim.inject(SimTime::from_micros(i * 150), ep, RequestType(0), 64, i);
        }
        sim.run_until_idle();
        sim.request_stats(RequestType(0))
            .unwrap()
            .latency
            .quantile(0.99)
    };
    let rr = run(LbPolicy::RoundRobin);
    let lo = run(LbPolicy::LeastOutstanding);
    assert!(
        lo < rr,
        "least-outstanding p99 {lo} must beat round-robin {rr} with a slow instance"
    );
}

#[test]
fn event_driven_sustains_more_concurrency_than_blocking() {
    // A tier that waits 10ms on I/O per request: 4 blocking workers cap
    // concurrency at 4; event-driven releases the worker at the call.
    let build = |concurrency: Concurrency| {
        let mut app = AppBuilder::new("t");
        let io = app.service("io").workers(256).build();
        let io_ep = app.endpoint(
            io,
            "wait",
            Dist::constant(64.0),
            vec![Step::Io {
                ns: Dist::constant(10_000_000.0),
            }],
        );
        let mut b = app.service("front").workers(4);
        if concurrency == Concurrency::Async {
            b = b.event_driven();
        }
        let front = b.build();
        let ep = app.endpoint(
            front,
            "op",
            Dist::constant(64.0),
            vec![Step::work_us(10.0), Step::call(io_ep, 64.0)],
        );
        (app.build(), ep)
    };
    let run = |concurrency| {
        let (spec, ep) = build(concurrency);
        let mut sim = Simulation::new(spec, cluster(2), 4);
        for i in 0..200u64 {
            sim.inject(SimTime::from_micros(i * 100), ep, RequestType(0), 64, i);
        }
        sim.run_until_idle();
        sim.request_stats(RequestType(0))
            .unwrap()
            .latency
            .quantile(0.99)
    };
    let blocking = run(Concurrency::Blocking);
    let event_driven = run(Concurrency::Async);
    // 200 requests x 10ms over 4 blocking workers ~ 500ms of queueing;
    // event-driven overlaps them all.
    assert!(
        blocking > 5 * event_driven,
        "blocking {blocking} vs event-driven {event_driven}"
    );
}

#[test]
fn spans_record_queue_time_when_workers_are_busy() {
    let (spec, ep, svc) = one_service(1, 1, LbPolicy::RoundRobin, Concurrency::Blocking, 1000.0);
    let mut sim = Simulation::new(spec, cluster(1), 5);
    for i in 0..10u64 {
        sim.inject(SimTime::ZERO, ep, RequestType(0), 64, i);
    }
    sim.run_until_idle();
    let stats = sim.collector().service(svc.0).unwrap();
    assert_eq!(stats.spans, 10);
    // 10 x 1ms serialized through one worker: total queueing ~ 45ms.
    assert!(
        stats.queue_ns > 30_000_000,
        "queue time {} too small",
        stats.queue_ns
    );
    assert!(stats.app_ns > 9_000_000, "app time {}", stats.app_ns);
}

#[test]
fn runtime_lb_policy_switch_takes_effect() {
    let (spec, ep, svc) = one_service(4, 4, LbPolicy::RoundRobin, Concurrency::Blocking, 100.0);
    let mut sim = Simulation::new(spec, cluster(4), 6);
    sim.set_lb_policy(svc, LbPolicy::Partition);
    // All requests share a key: with Partition they serialize on one
    // instance's 4 workers even though 16 workers exist.
    for i in 0..40u64 {
        sim.inject(SimTime::ZERO, ep, RequestType(0), 64, 777);
        let _ = i;
    }
    sim.run_until_idle();
    let p = sim.request_stats(RequestType(0)).unwrap().latency.max();
    assert!(p > 900_000, "partitioned hot key must serialize: max {p}");
}

#[test]
fn draining_instance_finishes_work_then_gets_no_more() {
    let (spec, ep, svc) = one_service(2, 2, LbPolicy::RoundRobin, Concurrency::Blocking, 2000.0);
    let mut sim = Simulation::new(spec, cluster(2), 7);
    for i in 0..20u64 {
        sim.inject(SimTime::from_micros(i * 100), ep, RequestType(0), 64, i);
    }
    sim.advance_to(SimTime::from_millis(5));
    let victim = sim.instances_of(svc)[0];
    sim.retire_instance(victim);
    for i in 0..20u64 {
        sim.inject(
            sim.now() + SimDuration::from_micros(i * 100),
            ep,
            RequestType(0),
            64,
            i,
        );
    }
    sim.run_until_idle();
    let st = sim.request_stats(RequestType(0)).unwrap();
    assert_eq!(st.issued, 40);
    assert_eq!(st.completed, 40, "draining must not lose requests");
}

#[test]
fn branch_nesting_depth_is_handled() {
    // Deeply nested branches exercise the interpreter's frame stack.
    let mut app = AppBuilder::new("deep");
    let svc = app.service("svc").workers(4).build();
    let mut steps = vec![Step::work_us(1.0)];
    for _ in 0..30 {
        steps = vec![Step::Branch {
            p: 1.0,
            then: Arc::new(steps),
            els: Arc::new(vec![]),
        }];
    }
    let ep = app.endpoint(svc, "op", Dist::constant(64.0), steps);
    let mut sim = Simulation::new(app.build(), cluster(1), 8);
    sim.inject(SimTime::ZERO, ep, RequestType(0), 64, 1);
    sim.run_until_idle();
    assert_eq!(sim.request_stats(RequestType(0)).unwrap().completed, 1);
}

#[test]
fn machine_utilization_reflects_load() {
    let (spec, ep, _svc) = one_service(64, 1, LbPolicy::RoundRobin, Concurrency::Blocking, 200.0);
    let mut sim = Simulation::new(spec, ClusterSpec::xeon_cluster(1, 1), 9);
    // 5000 qps x 200us = 1 core-second/s on a 40-core machine => ~2.5%.
    for i in 0..5000u64 {
        sim.inject(SimTime::from_micros(i * 200), ep, RequestType(0), 64, i);
    }
    sim.run_until_idle();
    let u = sim.machine_utilization(dsb_core::MachineId(0), 0);
    assert!(
        (0.01..0.10).contains(&u),
        "machine utilization {u} out of expected band"
    );
}

#[test]
fn response_sizes_affect_latency_via_nic_and_processing() {
    let run = |resp_bytes: f64| {
        let mut app = AppBuilder::new("t");
        let svc = app.service("svc").workers(8).build();
        let ep = app.endpoint(
            svc,
            "op",
            Dist::constant(resp_bytes),
            vec![Step::work_us(10.0)],
        );
        let mut sim = Simulation::new(app.build(), cluster(1), 10);
        for i in 0..50u64 {
            sim.inject(SimTime::from_millis(i), ep, RequestType(0), 64, i);
        }
        sim.run_until_idle();
        sim.request_stats(RequestType(0)).unwrap().latency.mean()
    };
    let small = run(256.0);
    let large = run(8.0 * 1024.0 * 1024.0); // 8 MB responses
    assert!(
        large > small + 5_000_000.0,
        "8MB responses must add transfer time: {small} vs {large}"
    );
}
