//! Property-based tests for the microservice framework: slab safety,
//! request conservation over randomized applications, and determinism —
//! on the in-repo `dsb-testkit` engine.

use std::collections::HashMap;

use dsb_core::{
    AppBuilder, ClusterSpec, EndpointRef, LbPolicy, RequestType, Simulation, Slab, Step,
};
use dsb_simcore::{Dist, Rng, SimTime};
use dsb_testkit::{gen, prop, prop_assert, prop_assert_eq, Shrink};
use dsb_uarch::ExecDomain;

// ---------------------------------------------------------------------------
// Slab: model-based testing against a HashMap
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum SlabOp {
    Insert(u32),
    Remove(usize),
    Get(usize),
}

impl Shrink for SlabOp {
    fn shrink(&self) -> Vec<Self> {
        match *self {
            SlabOp::Insert(v) => v.shrink().into_iter().map(SlabOp::Insert).collect(),
            SlabOp::Remove(i) => i.shrink().into_iter().map(SlabOp::Remove).collect(),
            SlabOp::Get(i) => i.shrink().into_iter().map(SlabOp::Get).collect(),
        }
    }
}

fn arb_ops(rng: &mut Rng) -> Vec<SlabOp> {
    gen::vec_with(rng, 0, 200, |r| match r.index(3) {
        0 => SlabOp::Insert(gen::u32_in(r, 0, 1000)),
        1 => SlabOp::Remove(gen::usize_in(r, 0, 64)),
        _ => SlabOp::Get(gen::usize_in(r, 0, 64)),
    })
}

/// The slab behaves exactly like a `HashMap` under any operation
/// sequence, including stale-key misses after removal.
#[test]
fn slab_matches_model() {
    prop!(cases = 64, arb_ops, |ops: &Vec<SlabOp>| {
        let mut slab = Slab::new();
        let mut model: HashMap<usize, u32> = HashMap::new();
        let mut keys = Vec::new();
        let mut next = 0usize;
        for op in ops {
            match *op {
                SlabOp::Insert(v) => {
                    let k = slab.insert(v);
                    keys.push((next, k));
                    model.insert(next, v);
                    next += 1;
                }
                SlabOp::Remove(i) if !keys.is_empty() => {
                    let (id, k) = keys[i % keys.len()];
                    let expected = model.remove(&id);
                    prop_assert_eq!(slab.remove(k), expected);
                }
                SlabOp::Get(i) if !keys.is_empty() => {
                    let (id, k) = keys[i % keys.len()];
                    prop_assert_eq!(slab.get(k).copied(), model.get(&id).copied());
                }
                _ => {}
            }
            prop_assert_eq!(slab.len(), model.len());
        }
        let live: Vec<u32> = slab.iter().map(|(_, &v)| v).collect();
        prop_assert_eq!(live.len(), model.len());
        Ok(())
    });
}

// ---------------------------------------------------------------------------
// Random applications: conservation + determinism
// ---------------------------------------------------------------------------

/// A compact, generatable description of a layered application.
#[derive(Debug, Clone, PartialEq)]
struct RandomApp {
    /// Per service: (workers, event_driven, work_us, io_us).
    layers: Vec<(u32, bool, u16, u16)>,
    /// Call pattern per non-leaf layer: 0 = single call, 1 = two
    /// sequential calls, 2 = parallel fan of 2, 3 = branch 50/50.
    call_kind: Vec<u8>,
}

type Layer = (u32, bool, u16, u16);

/// Shrinks one layer within the generator's domain (workers ≥ 1,
/// work_us ≥ 1).
fn shrink_layer((w, e, c, io): Layer) -> Vec<Layer> {
    let mut out = Vec::new();
    if w > 1 {
        out.push((1, e, c, io));
        out.push((w / 2, e, c, io));
    }
    if e {
        out.push((w, false, c, io));
    }
    if c > 1 {
        out.push((w, e, 1, io));
        out.push((w, e, c / 2, io));
    }
    if io > 0 {
        out.push((w, e, c, 0));
        out.push((w, e, c, io / 2));
    }
    out
}

impl Shrink for RandomApp {
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        let n = self.layers.len();
        // Fewer layers first (keeping `layers` and `call_kind` aligned),
        // then simpler layers, then simpler call patterns.
        if n > 1 {
            out.push(RandomApp {
                layers: self.layers[..n / 2].to_vec(),
                call_kind: self.call_kind[..n / 2].to_vec(),
            });
            out.push(RandomApp {
                layers: self.layers[..n - 1].to_vec(),
                call_kind: self.call_kind[..n - 1].to_vec(),
            });
        }
        for i in 0..n {
            for cand in shrink_layer(self.layers[i]) {
                let mut app = self.clone();
                app.layers[i] = cand;
                out.push(app);
            }
        }
        for i in 0..self.call_kind.len() {
            for cand in self.call_kind[i].shrink() {
                let mut app = self.clone();
                app.call_kind[i] = cand;
                out.push(app);
            }
        }
        out
    }
}

fn arb_app(rng: &mut Rng) -> RandomApp {
    let n = gen::usize_in(rng, 1, 5);
    let layers = (0..n)
        .map(|_| {
            (
                gen::u32_in(rng, 1, 8),
                gen::bool_(rng),
                gen::u16_in(rng, 1, 300),
                gen::u16_in(rng, 0, 200),
            )
        })
        .collect();
    let call_kind = (0..n).map(|_| gen::u8_in(rng, 0, 4)).collect();
    RandomApp { layers, call_kind }
}

fn build(r: &RandomApp) -> (dsb_core::AppSpec, EndpointRef) {
    let mut app = AppBuilder::new("random");
    let mut downstream: Option<EndpointRef> = None;
    for (i, &(workers, event_driven, work_us, io_us)) in r.layers.iter().enumerate().rev() {
        let mut b = app
            .service(&format!("svc{i}"))
            .workers(workers)
            .lb(if i % 2 == 0 {
                LbPolicy::RoundRobin
            } else {
                LbPolicy::LeastOutstanding
            })
            .instances(1 + (i as u32 % 2));
        if event_driven {
            b = b.event_driven();
        }
        let svc = b.build();
        let mut steps = vec![Step::Compute {
            ns: Dist::constant(work_us as f64 * 1000.0),
            domain: ExecDomain::User,
        }];
        if io_us > 0 {
            steps.push(Step::Io {
                ns: Dist::constant(io_us as f64 * 1000.0),
            });
        }
        if let Some(d) = downstream {
            match r.call_kind[i] % 4 {
                0 => steps.push(Step::call(d, 128.0)),
                1 => {
                    steps.push(Step::call(d, 128.0));
                    steps.push(Step::call(d, 64.0));
                }
                2 => steps.push(Step::FanCall {
                    target: d,
                    req_bytes: Dist::constant(64.0),
                    n: Dist::constant(2.0),
                }),
                _ => steps.push(Step::Branch {
                    p: 0.5,
                    then: std::sync::Arc::new(vec![Step::call(d, 128.0)]),
                    els: std::sync::Arc::new(vec![]),
                }),
            }
        }
        let ep = app.endpoint(svc, "op", Dist::constant(256.0), steps);
        downstream = Some(ep);
    }
    (app.build(), downstream.expect("at least one layer"))
}

/// `true` when a shrink candidate left the generator's domain.
fn out_of_domain(r: &RandomApp) -> bool {
    r.layers.is_empty()
        || r.layers.len() != r.call_kind.len()
        || r.layers.iter().any(|&(w, _, c, _)| w == 0 || c == 0)
}

fn simulate(r: &RandomApp, n_requests: u64, seed: u64) -> (u64, u64, u64) {
    let (spec, entry) = build(r);
    let mut cluster = ClusterSpec::xeon_cluster(3, 1);
    cluster.trace_sample_prob = 0.0;
    let mut sim = Simulation::new(spec, cluster, seed);
    for i in 0..n_requests {
        sim.inject(SimTime::from_micros(i * 997), entry, RequestType(0), 128, i);
    }
    sim.run_until_idle();
    let st = sim.request_stats(RequestType(0)).expect("stats exist");
    (st.issued, st.completed, sim.events_processed())
}

/// No request is ever lost, regardless of topology, concurrency model,
/// worker counts, or call pattern — and the run is deterministic.
#[test]
fn requests_conserved_and_deterministic() {
    prop!(
        cases = 64,
        |rng| (arb_app(rng), gen::u64_in(rng, 0, 1000)),
        |&(ref r, seed): &(RandomApp, u64)| {
            if out_of_domain(r) {
                return Ok(());
            }
            let (issued, completed, events) = simulate(r, 60, seed);
            prop_assert_eq!(issued, 60);
            prop_assert_eq!(completed, 60, "lost requests in {:?}", r);
            let again = simulate(r, 60, seed);
            prop_assert_eq!(
                again,
                (issued, completed, events),
                "nondeterminism in {:?}",
                r
            );
            Ok(())
        }
    );
}

/// Latency is bounded below by the sum of per-layer compute+io along a
/// single chain (each request must at least do the work).
#[test]
fn latency_at_least_service_demand() {
    prop!(cases = 64, arb_app, |r: &RandomApp| {
        if out_of_domain(r) {
            return Ok(());
        }
        let (spec, entry) = build(r);
        let mut cluster = ClusterSpec::xeon_cluster(3, 1);
        cluster.trace_sample_prob = 0.0;
        let mut sim = Simulation::new(spec, cluster, 1);
        sim.inject(SimTime::ZERO, entry, RequestType(0), 128, 1);
        sim.run_until_idle();
        let st = sim.request_stats(RequestType(0)).unwrap();
        prop_assert_eq!(st.completed, 1);
        // The entry layer's own work is a hard floor.
        let (_, _, work_us, io_us) = r.layers[0];
        let floor = (work_us as u64 + io_us as u64) * 1000;
        prop_assert!(
            st.latency.max() >= floor,
            "latency {} below demand floor {floor}",
            st.latency.max()
        );
        Ok(())
    });
}
