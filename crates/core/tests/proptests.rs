//! Property-based tests for the microservice framework: slab safety,
//! request conservation over randomized applications, and determinism.

use proptest::prelude::*;
use std::collections::HashMap;

use dsb_core::{
    AppBuilder, ClusterSpec, EndpointRef, LbPolicy, RequestType, Simulation, Slab,
    Step,
};
use dsb_simcore::{Dist, SimTime};
use dsb_uarch::ExecDomain;

// ---------------------------------------------------------------------------
// Slab: model-based testing against a HashMap
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum SlabOp {
    Insert(u32),
    Remove(usize),
    Get(usize),
}

fn arb_ops() -> impl Strategy<Value = Vec<SlabOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u32..1000).prop_map(SlabOp::Insert),
            (0usize..64).prop_map(SlabOp::Remove),
            (0usize..64).prop_map(SlabOp::Get),
        ],
        0..200,
    )
}

proptest! {
    #[test]
    fn slab_matches_model(ops in arb_ops()) {
        let mut slab = Slab::new();
        let mut model: HashMap<usize, u32> = HashMap::new();
        let mut keys = Vec::new();
        let mut next = 0usize;
        for op in ops {
            match op {
                SlabOp::Insert(v) => {
                    let k = slab.insert(v);
                    keys.push((next, k));
                    model.insert(next, v);
                    next += 1;
                }
                SlabOp::Remove(i) if !keys.is_empty() => {
                    let (id, k) = keys[i % keys.len()];
                    let expected = model.remove(&id);
                    prop_assert_eq!(slab.remove(k), expected);
                }
                SlabOp::Get(i) if !keys.is_empty() => {
                    let (id, k) = keys[i % keys.len()];
                    prop_assert_eq!(slab.get(k).copied(), model.get(&id).copied());
                }
                _ => {}
            }
            prop_assert_eq!(slab.len(), model.len());
        }
        let live: Vec<u32> = slab.iter().map(|(_, &v)| v).collect();
        prop_assert_eq!(live.len(), model.len());
    }
}

// ---------------------------------------------------------------------------
// Random applications: conservation + determinism
// ---------------------------------------------------------------------------

/// A compact, generatable description of a layered application.
#[derive(Debug, Clone)]
struct RandomApp {
    /// Per service: (workers, event_driven, work_us, io_us).
    layers: Vec<(u32, bool, u16, u16)>,
    /// Call pattern per non-leaf layer: 0 = single call, 1 = two
    /// sequential calls, 2 = parallel fan of 2, 3 = branch 50/50.
    call_kind: Vec<u8>,
}

fn arb_app() -> impl Strategy<Value = RandomApp> {
    (1usize..5)
        .prop_flat_map(|n| {
            (
                prop::collection::vec((1u32..8, any::<bool>(), 1u16..300, 0u16..200), n),
                prop::collection::vec(0u8..4, n),
            )
        })
        .prop_map(|(layers, call_kind)| RandomApp { layers, call_kind })
}

fn build(r: &RandomApp) -> (dsb_core::AppSpec, EndpointRef) {
    let mut app = AppBuilder::new("random");
    let mut downstream: Option<EndpointRef> = None;
    for (i, &(workers, event_driven, work_us, io_us)) in r.layers.iter().enumerate().rev() {
        let mut b = app
            .service(&format!("svc{i}"))
            .workers(workers)
            .lb(if i % 2 == 0 {
                LbPolicy::RoundRobin
            } else {
                LbPolicy::LeastOutstanding
            })
            .instances(1 + (i as u32 % 2));
        if event_driven {
            b = b.event_driven();
        }
        let svc = b.build();
        let mut steps = vec![Step::Compute {
            ns: Dist::constant(work_us as f64 * 1000.0),
            domain: ExecDomain::User,
        }];
        if io_us > 0 {
            steps.push(Step::Io {
                ns: Dist::constant(io_us as f64 * 1000.0),
            });
        }
        if let Some(d) = downstream {
            match r.call_kind[i] % 4 {
                0 => steps.push(Step::call(d, 128.0)),
                1 => {
                    steps.push(Step::call(d, 128.0));
                    steps.push(Step::call(d, 64.0));
                }
                2 => steps.push(Step::FanCall {
                    target: d,
                    req_bytes: Dist::constant(64.0),
                    n: Dist::constant(2.0),
                }),
                _ => steps.push(Step::Branch {
                    p: 0.5,
                    then: std::sync::Arc::new(vec![Step::call(d, 128.0)]),
                    els: std::sync::Arc::new(vec![]),
                }),
            }
        }
        let ep = app.endpoint(svc, "op", Dist::constant(256.0), steps);
        downstream = Some(ep);
    }
    (app.build(), downstream.expect("at least one layer"))
}

fn simulate(r: &RandomApp, n_requests: u64, seed: u64) -> (u64, u64, u64) {
    let (spec, entry) = build(r);
    let mut cluster = ClusterSpec::xeon_cluster(3, 1);
    cluster.trace_sample_prob = 0.0;
    let mut sim = Simulation::new(spec, cluster, seed);
    for i in 0..n_requests {
        sim.inject(
            SimTime::from_micros(i * 997),
            entry,
            RequestType(0),
            128,
            i,
        );
    }
    sim.run_until_idle();
    let st = sim.request_stats(RequestType(0)).expect("stats exist");
    (st.issued, st.completed, sim.events_processed())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// No request is ever lost, regardless of topology, concurrency model,
    /// worker counts, or call pattern — and the run is deterministic.
    #[test]
    fn requests_conserved_and_deterministic(r in arb_app(), seed in 0u64..1000) {
        let (issued, completed, events) = simulate(&r, 60, seed);
        prop_assert_eq!(issued, 60);
        prop_assert_eq!(completed, 60, "lost requests in {:?}", r);
        let again = simulate(&r, 60, seed);
        prop_assert_eq!(again, (issued, completed, events), "nondeterminism in {:?}", r);
    }

    /// Latency is bounded below by the sum of per-layer compute+io along a
    /// single chain (each request must at least do the work).
    #[test]
    fn latency_at_least_service_demand(r in arb_app()) {
        let (spec, entry) = build(&r);
        let mut cluster = ClusterSpec::xeon_cluster(3, 1);
        cluster.trace_sample_prob = 0.0;
        let mut sim = Simulation::new(spec, cluster, 1);
        sim.inject(SimTime::ZERO, entry, RequestType(0), 128, 1);
        sim.run_until_idle();
        let st = sim.request_stats(RequestType(0)).unwrap();
        prop_assert_eq!(st.completed, 1);
        // The entry layer's own work is a hard floor.
        let (_, _, work_us, io_us) = r.layers[0];
        let floor = (work_us as u64 + io_us as u64) * 1000;
        prop_assert!(
            st.latency.max() >= floor,
            "latency {} below demand floor {floor}",
            st.latency.max()
        );
    }
}
