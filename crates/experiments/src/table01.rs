//! Table 1 — characteristics and composition of each end-to-end
//! application.
//!
//! The paper reports LoC and per-language breakdowns of its
//! implementation; the structural analog for this reproduction is the
//! graph composition: unique microservices (the paper's headline column),
//! dependency edges, endpoints, handler script steps, and the protocols in
//! use.

use std::collections::BTreeSet;

use dsb_apps::{banking, ecommerce, media, social, swarm, BuiltApp};
use dsb_core::Step;

use crate::report::Table;
use crate::Scale;

fn count_steps(steps: &[Step]) -> usize {
    steps
        .iter()
        .map(|s| match s {
            Step::Branch { then, els, .. } | Step::CacheLookup { then, els, .. } => {
                1 + count_steps(then) + count_steps(els)
            }
            _ => 1,
        })
        .sum()
}

fn row(t: &mut Table, app: &BuiltApp, paper_services: u32) {
    let spec = &app.spec;
    let mut protocols = BTreeSet::new();
    let mut endpoints = 0usize;
    let mut steps = 0usize;
    for s in &spec.services {
        protocols.insert(s.protocol.name());
        endpoints += s.endpoints.len();
        for e in &s.endpoints {
            steps += count_steps(&e.script);
        }
    }
    t.row_owned(vec![
        spec.name.clone(),
        spec.service_count().to_string(),
        paper_services.to_string(),
        spec.edges().len().to_string(),
        endpoints.to_string(),
        steps.to_string(),
        protocols.into_iter().collect::<Vec<_>>().join("+"),
        app.mix.entries().len().to_string(),
    ]);
}

/// Regenerates Table 1.
pub fn run(_scale: Scale) -> String {
    let mut t = Table::new(
        "Table 1: suite composition (unique microservices matches the paper)",
        &[
            "service",
            "microservices",
            "paper",
            "edges",
            "endpoints",
            "script steps",
            "protocols",
            "query types",
        ],
    );
    row(&mut t, &social::social_network(), 36);
    row(&mut t, &media::media_service(), 38);
    row(&mut t, &ecommerce::ecommerce(), 41);
    row(&mut t, &banking::banking(), 34);
    row(&mut t, &swarm::swarm(swarm::SwarmVariant::Cloud), 25);
    row(&mut t, &swarm::swarm(swarm::SwarmVariant::Edge), 21);
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_counts_match_paper_column() {
        let out = run(Scale::Quick);
        for line in out.lines().skip(3) {
            let cells: Vec<&str> = line.split_whitespace().collect();
            if cells.len() >= 3 {
                assert_eq!(cells[1], cells[2], "ours vs paper in: {line}");
            }
        }
    }

    #[test]
    fn all_six_apps_listed() {
        let out = run(Scale::Quick);
        for name in [
            "social-network",
            "media-service",
            "e-commerce",
            "banking",
            "swarm-cloud",
            "swarm-edge",
        ] {
            assert!(out.contains(name), "missing {name}");
        }
    }
}
