//! Fig. 12 — tail latency under increasing load and decreasing frequency
//! (RAPL), for five single-tier services and the five end-to-end
//! DeathStarBench services.
//!
//! For each application we first find its max QPS under QoS at nominal
//! frequency, then sweep (load fraction × frequency) and report p99
//! normalized to the QoS target (values > 1 are violations — the paper's
//! bright/yellow cells).
//!
//! Expected shapes: Xapian is the most frequency-sensitive single-tier
//! service and MongoDB the least (I/O-bound); the end-to-end microservice
//! apps are *more* sensitive to low frequency than any single-tier
//! service, because each tier must meet a far stricter internal latency
//! budget.

use dsb_apps::{banking, ecommerce, media, singles, social, swarm, BuiltApp};

use crate::harness::{make_cluster, max_qps_under_qos, probe};
use crate::report::Table;
use crate::Scale;

const FREQS: [f64; 3] = [2.4, 1.8, 1.0];

/// Sweep result for one app: `grid[freq][load] = p99 / qos`.
pub struct FreqSweep {
    /// Application name.
    pub name: String,
    /// Max QPS under QoS at nominal frequency.
    pub base_qps: f64,
    /// Normalized p99 per (frequency, load-fraction) cell.
    pub grid: Vec<Vec<f64>>,
    /// The load fractions used.
    pub loads: Vec<f64>,
}

/// Runs the frequency sweep for one app.
pub fn sweep(app: &BuiltApp, scale: Scale, seed: u64) -> FreqSweep {
    let secs = scale.secs(8);
    let cluster = make_cluster(8);
    let app = &crate::harness::shrink(app, 4);
    let base = max_qps_under_qos(app, &cluster, &|_| {}, app.qos_p99, secs, seed).max(10.0);
    let loads = vec![0.3, 0.6, 0.9];
    let mut grid = Vec::new();
    for &f in &FREQS {
        let mut row = Vec::new();
        for &lf in &loads {
            let p = probe(
                app,
                &cluster,
                &move |sim| sim.set_all_frequencies(f),
                base * lf,
                secs,
                secs / 3,
                seed,
            );
            let mut norm = p.p99.as_nanos() as f64 / app.qos_p99.as_nanos() as f64;
            if p.completion < 0.95 {
                norm = norm.max(10.0); // saturated: unbounded queues
            }
            row.push(norm);
        }
        grid.push(row);
    }
    FreqSweep {
        name: app.spec.name.clone(),
        base_qps: base,
        grid,
        loads,
    }
}

/// Number of QoS-violated cells in the grid (the paper's bright cells).
pub fn violated_cells(s: &FreqSweep) -> usize {
    s.grid
        .iter()
        .flat_map(|row| row.iter())
        .filter(|&&v| v > 1.0)
        .count()
}

/// Pure single-thread sensitivity: p99 inflation from 2.4 GHz to 1.0 GHz
/// at the lightest load (no saturation in the way).
pub fn sensitivity(s: &FreqSweep) -> f64 {
    s.grid[FREQS.len() - 1][0] / s.grid[0][0].max(1e-9)
}

/// Regenerates Fig. 12.
pub fn run(scale: Scale) -> String {
    let apps: Vec<BuiltApp> = vec![
        singles::nginx(),
        singles::memcached(),
        singles::mongodb(),
        singles::xapian(),
        singles::recommender(),
        social::social_network(),
        media::media_service(),
        ecommerce::ecommerce(),
        banking::banking(),
        swarm::swarm(swarm::SwarmVariant::Cloud),
    ];
    let mut out = String::new();
    let mut summary = Table::new(
        "Fig 12 summary: QoS-violated cells (of 9) and low-load p99 inflation at 1.0GHz",
        &[
            "application",
            "max QPS@QoS (2.4GHz)",
            "violated cells",
            "p99 inflation @1GHz",
        ],
    );
    for (i, app) in apps.iter().enumerate() {
        let s = sweep(app, scale, 100 + i as u64);
        let mut t = Table::new(
            &format!("Fig 12 [{}]: p99 / QoS over load x frequency", s.name),
            &["freq (GHz)", "0.3 load", "0.6 load", "0.9 load"],
        );
        for (fi, &f) in FREQS.iter().enumerate() {
            t.row_owned(vec![
                format!("{f:.1}"),
                format!("{:.2}", s.grid[fi][0]),
                format!("{:.2}", s.grid[fi][1]),
                format!("{:.2}", s.grid[fi][2]),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
        summary.row_owned(vec![
            s.name.clone(),
            format!("{:.0}", s.base_qps),
            format!("{}", violated_cells(&s)),
            format!("{:.2}x", sensitivity(&s)),
        ]);
    }
    out.push_str(&summary.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mongodb_tolerates_low_frequency_xapian_does_not() {
        let mongo = sweep(&singles::mongodb(), Scale::Quick, 1);
        let xapian = sweep(&singles::xapian(), Scale::Quick, 1);
        let sm = sensitivity(&mongo);
        let sx = sensitivity(&xapian);
        assert!(
            sx > sm,
            "xapian sensitivity {sx} must exceed mongodb {sm} (I/O-bound)"
        );
        assert!(
            violated_cells(&xapian) >= violated_cells(&mongo),
            "xapian must violate at least as many cells"
        );
        // MongoDB barely notices the slow core at low load.
        assert!(sm < 1.6, "mongodb inflation {sm}");
        assert!(sx > 1.7, "xapian inflation {sx}");
    }

    #[test]
    fn latency_grows_with_load_at_fixed_frequency() {
        let s = sweep(&singles::xapian(), Scale::Quick, 2);
        // At nominal frequency, p99 at 0.9 load >= p99 at 0.3 load.
        assert!(s.grid[0][2] >= s.grid[0][0] * 0.8, "{:?}", s.grid[0]);
        assert!(s.base_qps > 50.0);
    }
}
