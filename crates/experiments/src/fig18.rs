//! Fig. 18 — microservice dependency graphs.
//!
//! The paper renders the "death star" graphs of Netflix/Twitter/Amazon and
//! of Social Network. We emit Graphviz DOT for every suite application
//! (written next to the binary as `figures/figN_<app>.dot` when run with
//! write access) plus the degree statistics that characterize the graphs.

use dsb_apps::{banking, ecommerce, media, social, swarm, BuiltApp};

use crate::report::{f1, Table};
use crate::Scale;

fn stats(app: &BuiltApp) -> (usize, usize, usize, usize, f64) {
    let edges = app.spec.edges();
    let n = app.spec.service_count();
    let mut indeg = vec![0usize; n];
    let mut outdeg = vec![0usize; n];
    for (a, b) in &edges {
        outdeg[a.0 as usize] += 1;
        indeg[b.0 as usize] += 1;
    }
    let max_in = indeg.iter().copied().max().unwrap_or(0);
    let max_out = outdeg.iter().copied().max().unwrap_or(0);
    let avg = edges.len() as f64 / n as f64;
    (n, edges.len(), max_in, max_out, avg)
}

/// Regenerates Fig. 18 (graph statistics + DOT export).
pub fn run(_scale: Scale) -> String {
    let apps = vec![
        social::social_network(),
        media::media_service(),
        ecommerce::ecommerce(),
        banking::banking(),
        swarm::swarm(swarm::SwarmVariant::Cloud),
        swarm::swarm(swarm::SwarmVariant::Edge),
    ];
    let mut t = Table::new(
        "Fig 18: dependency graph shape",
        &[
            "application",
            "services",
            "edges",
            "max fan-in",
            "max fan-out",
            "avg degree",
        ],
    );
    let mut dots = String::new();
    let _ = std::fs::create_dir_all("figures");
    for app in &apps {
        let (n, e, mi, mo, avg) = stats(app);
        t.row_owned(vec![
            app.spec.name.clone(),
            n.to_string(),
            e.to_string(),
            mi.to_string(),
            mo.to_string(),
            f1(avg),
        ]);
        let dot = app.spec.to_dot();
        let path = format!("figures/fig18_{}.dot", app.spec.name);
        if std::fs::write(&path, &dot).is_ok() {
            dots.push_str(&format!("wrote {path}\n"));
        }
    }
    format!("{}{}", t.render(), dots)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn social_graph_has_hub_structure() {
        let app = social::social_network();
        let (_, _, max_in, max_out, _) = stats(&app);
        // Caches/DBs are heavily fanned into; orchestrators fan out widely.
        assert!(max_in >= 3, "max fan-in {max_in}");
        assert!(max_out >= 5, "max fan-out {max_out}");
    }

    #[test]
    fn dot_is_valid_ish() {
        let app = banking::banking();
        let dot = app.spec.to_dot();
        assert!(dot.starts_with("digraph"));
        assert_eq!(dot.matches("->").count(), app.spec.edges().len());
    }
}
