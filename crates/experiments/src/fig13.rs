//! Fig. 13 — throughput under QoS on a Xeon server, a frequency-equalized
//! Xeon (1.8 GHz), and a Cavium ThunderX.
//!
//! The paper: all five services saturate much earlier on ThunderX; the
//! Xeon at 1.8 GHz is worse than at nominal frequency but still clearly
//! ahead of the in-order SoC; Swarm suffers least (network-bound).

use dsb_apps::{banking, ecommerce, media, social, swarm, BuiltApp};

use crate::harness::{make_cluster, make_thunderx_cluster};
use crate::report::Table;
use crate::Scale;

/// Goodput per platform for one app: `(xeon, xeon@1.8, thunderx)`.
pub fn goodput(app: &BuiltApp, scale: Scale, seed: u64) -> (f64, f64, f64) {
    let secs = scale.secs(8);
    // Quick shrinks harder: the platform *ordering* survives any uniform
    // capacity scale-down, and halved pools halve the search's event
    // count. Full bisection depth stays — the Xeon@1.8 and ThunderX
    // goodputs are close enough that a coarser search cannot separate
    // them.
    let (factor, bisections) = match scale {
        Scale::Quick => (8, 5),
        Scale::Full => (4, 5),
    };
    let app = &crate::harness::shrink(app, factor);
    let xeon_cluster = make_cluster(8);
    let tx_cluster = make_thunderx_cluster(8);
    let search = |cluster: &_, setup: &dyn Fn(&mut dsb_core::Simulation)| {
        crate::harness::max_qps_under_qos_probes(
            app,
            cluster,
            setup,
            app.qos_p99,
            secs,
            seed,
            bisections,
        )
    };
    let xeon = search(&xeon_cluster, &|_| {});
    let xeon18 = search(&xeon_cluster, &|sim| sim.set_all_frequencies(1.8));
    let tx = search(&tx_cluster, &|_| {});
    (xeon, xeon18, tx)
}

/// Regenerates Fig. 13.
pub fn run(scale: Scale) -> String {
    let mut t = Table::new(
        "Fig 13: max QPS under QoS per platform",
        &["application", "Xeon", "Xeon@1.8GHz", "ThunderX", "TX/Xeon"],
    );
    let apps: Vec<BuiltApp> = vec![
        social::social_network(),
        ecommerce::ecommerce(),
        banking::banking(),
        media::media_service(),
        swarm::swarm(swarm::SwarmVariant::Cloud),
    ];
    for (i, app) in apps.iter().enumerate() {
        let (xeon, xeon18, tx) = goodput(app, scale, 110 + i as u64);
        t.row_owned(vec![
            app.spec.name.clone(),
            format!("{xeon:.0}"),
            format!("{xeon18:.0}"),
            format!("{tx:.0}"),
            format!("{:.2}", tx / xeon.max(1.0)),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_ordering_holds_for_social_network() {
        let app = social::social_network();
        let (xeon, xeon18, tx) = goodput(&app, Scale::Quick, 1);
        assert!(xeon > 0.0, "xeon goodput {xeon}");
        assert!(
            xeon >= xeon18,
            "nominal {xeon} must beat equalized {xeon18}"
        );
        assert!(
            xeon18 > tx,
            "equalized Xeon {xeon18} must beat ThunderX {tx} (in-order penalty)"
        );
    }
}
