//! Fig. 9 — throughput vs tail latency for the Swarm service, executing at
//! the edge vs in the cloud.
//!
//! The paper: for image recognition, cloud execution has higher latency at
//! low load (wireless round trip) but ~7.8× higher throughput at equal
//! tail latency / ~20× lower latency at equal throughput once the drones'
//! two on-board cores oversubscribe. Obstacle avoidance flips the
//! trade-off at low load: it is light but latency-critical, and the cloud
//! round trip is catastrophic for route adjustment.

use dsb_apps::swarm::{self, SwarmVariant};
use dsb_core::RequestType;

use crate::harness::{build_sim, drive, make_cluster};
use crate::report::{f2, Table};
use crate::Scale;

/// p99 per request type (ms) and completion rate at one offered load.
fn tail_at(variant: SwarmVariant, qps: f64, secs: u64, seed: u64) -> (f64, f64, f64) {
    let app = swarm::swarm(variant);
    let (mut sim, mut load) = build_sim(&app, make_cluster(8), seed);
    drive(&mut sim, &mut load, 0, secs, qps);
    let from = (secs / 3).max(1) as usize;
    let p99 = |rt: RequestType| {
        sim.request_stats(rt).map_or(0.0, |st| {
            st.windows.merged_range(from, secs as usize).quantile(0.99) as f64 / 1e6
        })
    };
    let (issued, completed, _) = crate::harness::totals(&sim);
    (
        p99(swarm::IMAGE_RECOG),
        p99(swarm::OBSTACLE_AVOID),
        completed as f64 / issued.max(1) as f64,
    )
}

/// Regenerates Fig. 9.
pub fn run(scale: Scale) -> String {
    let secs = scale.secs(12);
    let loads: Vec<f64> = match scale {
        Scale::Quick => vec![5.0, 20.0, 80.0],
        Scale::Full => vec![2.0, 5.0, 10.0, 20.0, 40.0, 80.0, 160.0, 320.0],
    };
    let mut t = Table::new(
        "Fig 9: Swarm edge vs cloud — p99 (ms) per query type vs offered QPS",
        &[
            "QPS",
            "edge imgRecog",
            "cloud imgRecog",
            "edge obstacle",
            "cloud obstacle",
        ],
    );
    for (i, &qps) in loads.iter().enumerate() {
        let (e_img, e_obs, e_c) = tail_at(SwarmVariant::Edge, qps, secs, 90 + i as u64);
        let (c_img, c_obs, c_c) = tail_at(SwarmVariant::Cloud, qps, secs, 90 + i as u64);
        t.row_owned(vec![
            format!("{qps:.0}"),
            format!("{} ({:.0}%)", f2(e_img), e_c * 100.0),
            format!("{} ({:.0}%)", f2(c_img), c_c * 100.0),
            f2(e_obs),
            f2(c_obs),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Median obstacle-avoidance latency at low load per variant (ms).
    /// The *median* is the right observable here: the edge tail is owned
    /// by head-of-line blocking behind jimp recognition jobs on the
    /// drones' two cores (the quantum ablation's subject), which at p99
    /// can swamp the wireless-round-trip difference this test is about.
    fn obstacle_p50(variant: SwarmVariant, seed: u64) -> f64 {
        let app = swarm::swarm(variant);
        let (mut sim, mut load) = build_sim(&app, make_cluster(8), seed);
        drive(&mut sim, &mut load, 0, 8, 3.0);
        sim.request_stats(swarm::OBSTACLE_AVOID).map_or(0.0, |st| {
            st.windows.merged_range(2, 8).quantile(0.5) as f64 / 1e6
        })
    }

    #[test]
    fn cloud_higher_latency_at_low_load() {
        for seed in [1, 2, 3] {
            let e_obs = obstacle_p50(SwarmVariant::Edge, seed);
            let c_obs = obstacle_p50(SwarmVariant::Cloud, seed);
            // Obstacle avoidance local at the edge vs cloud round trip.
            assert!(
                c_obs > e_obs,
                "cloud obstacle {c_obs}ms must exceed edge {e_obs}ms at low load (seed {seed})"
            );
        }
    }

    #[test]
    fn edge_saturates_before_cloud_on_recognition() {
        let (e_lo, _, e_lo_c) = tail_at(SwarmVariant::Edge, 3.0, 8, 2);
        let (e_hi, _, e_hi_c) = tail_at(SwarmVariant::Edge, 150.0, 8, 2);
        let (c_hi, _, c_hi_c) = tail_at(SwarmVariant::Cloud, 150.0, 8, 2);
        // At 50x the load, the edge's two on-board cores oversubscribe
        // (latency inflates and requests stop completing) while the cloud
        // still serves nearly everything at a sane tail.
        // Completion is sampled right at the end of the drive window;
        // multi-second recognition responses still in flight keep this
        // below 1.0 even with no request ever lost.
        assert!(e_lo_c > 0.8, "edge at low load must complete ({e_lo_c})");
        assert!(
            e_hi > 2.0 * e_lo || e_hi_c < 0.7,
            "edge must oversubscribe: {e_lo}ms -> {e_hi}ms (completion {e_hi_c})"
        );
        assert!(c_hi_c > 0.9, "cloud must absorb the load ({c_hi_c})");
        assert!(
            e_hi > 3.0 * c_hi,
            "edge {e_hi}ms must be far worse than cloud {c_hi}ms at high load"
        );
    }
}
