//! Fig. 20 — microservices take longer than monoliths to recover from a
//! QoS violation, even with autoscaling.
//!
//! Both deployments see the same load spike and run the same
//! utilization-threshold autoscaler. The monolith's scaler has exactly one
//! knob (add monolith instances) and recovers as soon as they boot; the
//! microservice deployment upsizes whichever tiers *look* saturated —
//! backpressure makes that signal misleading, so it takes several rounds
//! (and several instance-startup delays) to find and fix the real culprit,
//! during which queues keep growing. The paper also quotes a 10.4× tail
//! degradation from mismanaging a single dependency; we report the peak
//! tail ratio between the two deployments.

use dsb_apps::{monolith, social, BuiltApp};
use dsb_cluster::{Autoscaler, QosMonitor, ScalePolicy};
use dsb_core::ServiceId;
use dsb_simcore::SimDuration;

use crate::harness::{build_sim, drive_ticked, make_cluster, MAX_RTYPE};
use crate::report::Table;
use crate::Scale;

/// Timeline of one deployment under the spike.
pub struct Recovery {
    /// Per-second merged p99 in ms.
    pub p99_ms: Vec<f64>,
    /// Time from QoS violation to recovery, if recovered.
    pub recovery: Option<SimDuration>,
    /// Scaling actions taken.
    pub actions: usize,
    /// Peak p99 (ms) after the spike started.
    pub peak_ms: f64,
}

fn run_one(app: &BuiltApp, base_qps: f64, spike_qps: f64, secs: u64, seed: u64) -> Recovery {
    let spike_at = secs / 4;
    let spike_until = secs / 2;
    let (mut sim, mut load) = build_sim(app, make_cluster(12), seed);
    // Real cluster managers bound churn: a few scale-outs per decision
    // interval, granted to the most-utilized services. The monolith's one
    // knob always wins the budget; the microservice deployment spends
    // rounds on backpressured (blocked-but-busy) tiers first.
    let mut scaler = Autoscaler::new(ScalePolicy {
        cooldown: SimDuration::from_secs(10),
        max_instances: 40,
        ..ScalePolicy::default()
    })
    .with_budget(3);
    for i in 0..app.spec.service_count() {
        scaler.manage(ServiceId(i as u32));
    }
    let mut monitor = QosMonitor::new(dsb_core::RequestType(0), app.qos_p99);
    let mut p99_ms = Vec::new();
    {
        let scaler = &mut scaler;
        let monitor = &mut monitor;
        let p99 = &mut p99_ms;
        drive_ticked(
            &mut sim,
            &mut load,
            0,
            secs,
            |t| {
                let s = t.as_secs_f64() as u64;
                if s >= spike_at && s < spike_until {
                    spike_qps
                } else {
                    base_qps
                }
            },
            &mut |sim, s| {
                scaler.tick(sim);
                monitor.observe(sim);
                let w = s as usize;
                let mut h = dsb_simcore::Histogram::compact();
                for t in 0..MAX_RTYPE {
                    if let Some(st) = sim.request_stats(dsb_core::RequestType(t)) {
                        h.merge(&st.windows.merged_range(w, w + 1));
                    }
                }
                p99.push(h.quantile(0.99) as f64 / 1e6);
            },
        );
    }
    let peak_ms = p99_ms[spike_at as usize..]
        .iter()
        .copied()
        .fold(0.0, f64::max);
    Recovery {
        p99_ms,
        recovery: monitor.recovery_time(),
        actions: scaler.events().len(),
        peak_ms,
    }
}

/// Runs both deployments; returns `(microservices, monolith)`.
///
/// Apps are shrunk (worker pools / 8) so the spike is affordable to
/// simulate; the spike is sized at 1.6x each deployment's own measured
/// capacity so both are pushed equally far past saturation.
pub fn compare(scale: Scale, seed: u64) -> (Recovery, Recovery) {
    let secs = scale.secs(120);
    let micro_app = crate::harness::shrink(&social::social_network(), 8);
    let mono_app = crate::harness::shrink(&monolith::social_monolith(), 8);
    let cluster = make_cluster(12);
    let cal_secs = scale.secs(6);
    let micro_cap = crate::harness::max_qps_under_qos(
        &micro_app,
        &cluster,
        &|_| {},
        micro_app.qos_p99,
        cal_secs,
        seed,
    )
    .max(50.0);
    let mono_cap = crate::harness::max_qps_under_qos(
        &mono_app,
        &cluster,
        &|_| {},
        mono_app.qos_p99,
        cal_secs,
        seed,
    )
    .max(50.0);
    let micro = run_one(&micro_app, 0.4 * micro_cap, 1.6 * micro_cap, secs, seed);
    let mono = run_one(&mono_app, 0.4 * mono_cap, 1.6 * mono_cap, secs, seed);
    (micro, mono)
}

/// Regenerates Fig. 20.
pub fn run(scale: Scale) -> String {
    let (micro, mono) = compare(scale, 140);
    let mut t = Table::new(
        "Fig 20: recovery from a QoS violation (load spike), autoscaling on",
        &["t (s)", "microservices p99 (ms)", "monolith p99 (ms)"],
    );
    for (s, (a, b)) in micro.p99_ms.iter().zip(&mono.p99_ms).enumerate() {
        t.row_owned(vec![s.to_string(), format!("{a:.2}"), format!("{b:.2}")]);
    }
    let fmt = |r: &Recovery| {
        format!(
            "peak p99 {:.1}ms, scaling actions {}, recovery {}",
            r.peak_ms,
            r.actions,
            r.recovery
                .map_or("none within run".to_string(), |d| format!("{d}"))
        )
    };
    format!(
        "{}\nmicroservices: {}\nmonolith:      {}\npeak tail ratio (micro/mono): {:.1}x\n",
        t.render(),
        fmt(&micro),
        fmt(&mono),
        micro.peak_ms / mono.peak_ms.max(0.001)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spike_violates_and_scaler_works_far_harder_for_microservices() {
        let (micro, mono) = compare(Scale::Quick, 3);
        // Both deployments must experience the violation...
        assert!(micro.peak_ms > 5.0, "micro peak {}", micro.peak_ms);
        assert!(mono.peak_ms > 5.0, "mono peak {}", mono.peak_ms);
        // ...and the microservice deployment needs many times more
        // scaling actions to contain it (the monolith has one knob).
        assert!(
            micro.actions > 3 * mono.actions,
            "micro actions {} vs mono {}",
            micro.actions,
            mono.actions
        );
    }
}
