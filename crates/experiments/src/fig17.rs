//! Fig. 17 — backpressure in a two-tier (nginx + memcached) application.
//!
//! Case A: the client drives nginx itself past saturation; a
//! utilization-driven autoscaler correctly scales nginx out and latency
//! recovers. Case B: a small nginx→memcached connection pool (HTTP/1
//! blocking) makes *memcached* the bottleneck even though it is nearly
//! idle; nginx workers busy-wait, the autoscaler scales nginx (the wrong
//! tier), and the situation does not improve.
//!
//! The timeline is read from a [`dsb_telemetry::Scraper`] attached to the
//! run (rather than ad-hoc getters), so the same registry that renders
//! the table also drives the SLO burn-rate alert and the root-cause
//! report printed under it: in case A the alert names nginx itself; in
//! case B it walks the saturated connection pool and names memcached.

use dsb_apps::twotier;
use dsb_cluster::{Autoscaler, ScalePolicy};
use dsb_simcore::{SimDuration, SimTime};
use dsb_telemetry::{names, report, BurnRule, Labels, Scraper};

use crate::harness::{build_sim, drive_ticked, make_cluster};
use crate::report::Table;
use crate::Scale;

struct Timeline {
    rows: Vec<(u64, f64, f64, usize, f64, f64)>,
    scale_events: usize,
    /// ALERT / ROOT CAUSE lines from the telemetry layer.
    telemetry: String,
    /// Culprit service names, one per diagnosed alert (read by tests).
    #[cfg_attr(not(test), allow(dead_code))]
    culprits: Vec<String>,
}

fn run_case(
    nginx_workers: u32,
    conn_limit: u32,
    qps: f64,
    max_instances: usize,
    secs: u64,
    seed: u64,
) -> Timeline {
    let app = twotier::twotier(nginx_workers, conn_limit);
    let nginx = app.service("nginx");
    let mc = app.service("memcached");
    let (mut sim, mut load) = build_sim(&app, make_cluster(6), seed);
    let mut scaler = Autoscaler::new(ScalePolicy {
        cooldown: SimDuration::from_secs(10),
        max_instances,
        ..ScalePolicy::default()
    });
    scaler.manage(nginx);
    scaler.manage(mc);
    let mut scraper = Scraper::new(SimDuration::from_secs(1));
    for slo in app.slos() {
        scraper = scraper.with_slo(slo);
    }
    let mut rows = Vec::new();
    {
        let scaler = &mut scaler;
        let scraper = &mut scraper;
        let rows = &mut rows;
        drive_ticked(&mut sim, &mut load, 0, secs, |_| qps, &mut |sim, s| {
            scaler.tick(sim);
            scraper.tick(sim, SimTime::from_secs(s + 1));
            let reg = scraper.registry();
            let w = s as usize;
            let ln = Labels::service(nginx.0);
            let lm = Labels::service(mc.0);
            rows.push((
                s,
                reg.window_mean(names::SPAN_P99_NS, &ln, w) / 1e6,
                reg.window_mean(names::SPAN_P99_NS, &lm, w) / 1e6,
                reg.window_mean(names::INSTANCES, &ln, w).round() as usize,
                reg.window_mean(names::OCCUPANCY_PERMILLE, &ln, w) / 1000.0,
                reg.window_mean(names::OCCUPANCY_PERMILLE, &lm, w) / 1000.0,
            ));
        });
    }
    let (alerts, causes) = report::analyze(&sim, &scraper, &BurnRule::default());
    let culprits = causes
        .iter()
        .map(|rc| app.name_of(dsb_core::ServiceId(rc.culprit)).to_string())
        .collect();
    Timeline {
        rows,
        scale_events: scaler.events().len(),
        telemetry: report::alert_lines(&sim, &alerts, &causes),
        culprits,
    }
}

fn render(title: &str, tl: &Timeline) -> String {
    let mut t = Table::new(
        title,
        &[
            "t (s)",
            "nginx p99 (ms)",
            "memcached p99 (ms)",
            "nginx insts",
            "nginx occ",
            "mc occ",
        ],
    );
    for &(s, np, mp, ni, no, mo) in &tl.rows {
        t.row_owned(vec![
            s.to_string(),
            format!("{np:.2}"),
            format!("{mp:.3}"),
            ni.to_string(),
            format!("{no:.2}"),
            format!("{mo:.2}"),
        ]);
    }
    format!(
        "{}(autoscaler actions: {})\n{}",
        t.render(),
        tl.scale_events,
        tl.telemetry
    )
}

/// Regenerates Fig. 17.
pub fn run(scale: Scale) -> String {
    let secs = scale.secs(60);
    // Case A: ample connections; load past the 4-worker nginx's capacity.
    let a = run_case(4, 4096, 30_000.0, 8, secs, 120);
    // Case B: one upstream connection per nginx instance; the cluster
    // admin capped the nginx group at 3 — scaling nginx cannot reach the
    // offered load, and memcached (the real constraint) is never scaled.
    let b = run_case(64, 1, 30_000.0, 3, secs, 121);
    format!(
        "{}\n{}",
        render("Fig 17 case A: nginx saturation (autoscaling helps)", &a),
        render(
            "Fig 17 case B: memcached backpressures nginx (autoscaling scales the wrong tier)",
            &b
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_b_nginx_busy_memcached_idle() {
        let b = run_case(64, 1, 30_000.0, 3, 12, 1);
        let last = b.rows.last().unwrap();
        assert!(last.4 > 0.9, "nginx occupancy {}", last.4);
        assert!(last.5 < 0.3, "memcached occupancy {}", last.5);
        // nginx span latency (includes blocked wait) far exceeds memcached's.
        assert!(
            last.1 > 10.0 * last.2.max(0.01),
            "nginx {} vs memcached {}",
            last.1,
            last.2
        );
        // The SLO burn-rate alert fires, and the root-cause engine names
        // the paper's culprit: memcached, behind the saturated pool — not
        // nginx, where the latency is billed.
        assert!(
            b.telemetry.contains("ALERT"),
            "backpressure must burn the SLO:\n{}",
            b.telemetry
        );
        assert_eq!(
            b.culprits.first().map(String::as_str),
            Some("memcached"),
            "{}",
            b.telemetry
        );
    }

    #[test]
    fn case_a_scaling_improves_latency() {
        let a = run_case(4, 4096, 30_000.0, 8, 32, 2);
        assert!(a.scale_events > 0, "autoscaler must act");
        // After scaling, late-run nginx latency is below the early peak.
        let peak_early = a.rows[..15].iter().map(|r| r.1).fold(0.0, f64::max);
        let late = a.rows.last().unwrap().1;
        assert!(
            late < peak_early,
            "late {late} must improve on early peak {peak_early}"
        );
        // Saturation is nginx's own doing here: any diagnosis must blame
        // nginx itself, not a downstream tier.
        assert!(a.culprits.iter().all(|c| c == "nginx"), "{:?}", a.culprits);
    }
}
