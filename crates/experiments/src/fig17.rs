//! Fig. 17 — backpressure in a two-tier (nginx + memcached) application.
//!
//! Case A: the client drives nginx itself past saturation; a
//! utilization-driven autoscaler correctly scales nginx out and latency
//! recovers. Case B: a small nginx→memcached connection pool (HTTP/1
//! blocking) makes *memcached* the bottleneck even though it is nearly
//! idle; nginx workers busy-wait, the autoscaler scales nginx (the wrong
//! tier), and the situation does not improve.

use dsb_apps::twotier;
use dsb_cluster::{Autoscaler, ScalePolicy};
use dsb_simcore::SimDuration;

use crate::harness::{build_sim, drive_ticked, make_cluster};
use crate::report::Table;
use crate::Scale;

struct Timeline {
    rows: Vec<(u64, f64, f64, usize, f64, f64)>,
    scale_events: usize,
}

fn run_case(
    nginx_workers: u32,
    conn_limit: u32,
    qps: f64,
    max_instances: usize,
    secs: u64,
    seed: u64,
) -> Timeline {
    let app = twotier::twotier(nginx_workers, conn_limit);
    let nginx = app.service("nginx");
    let mc = app.service("memcached");
    let (mut sim, mut load) = build_sim(&app, make_cluster(6), seed);
    let mut scaler = Autoscaler::new(ScalePolicy {
        cooldown: SimDuration::from_secs(10),
        max_instances,
        ..ScalePolicy::default()
    });
    scaler.manage(nginx);
    scaler.manage(mc);
    let mut rows = Vec::new();
    {
        let scaler = &mut scaler;
        let rows = &mut rows;
        drive_ticked(&mut sim, &mut load, 0, secs, |_| qps, &mut |sim, s| {
            scaler.tick(sim);
            let w = s as usize;
            let nginx_p99 = sim
                .collector()
                .service(nginx.0)
                .map_or(0.0, |st| st.latency_windows.quantile(w, 0.99) as f64 / 1e6);
            let mc_p99 = sim
                .collector()
                .service(mc.0)
                .map_or(0.0, |st| st.latency_windows.quantile(w, 0.99) as f64 / 1e6);
            rows.push((
                s,
                nginx_p99,
                mc_p99,
                sim.instance_count(nginx),
                sim.occupancy(nginx),
                sim.occupancy(mc),
            ));
        });
    }
    Timeline {
        rows,
        scale_events: scaler.events().len(),
    }
}

fn render(title: &str, tl: &Timeline) -> String {
    let mut t = Table::new(
        title,
        &[
            "t (s)",
            "nginx p99 (ms)",
            "memcached p99 (ms)",
            "nginx insts",
            "nginx occ",
            "mc occ",
        ],
    );
    for &(s, np, mp, ni, no, mo) in &tl.rows {
        t.row_owned(vec![
            s.to_string(),
            format!("{np:.2}"),
            format!("{mp:.3}"),
            ni.to_string(),
            format!("{no:.2}"),
            format!("{mo:.2}"),
        ]);
    }
    format!("{}(autoscaler actions: {})\n", t.render(), tl.scale_events)
}

/// Regenerates Fig. 17.
pub fn run(scale: Scale) -> String {
    let secs = scale.secs(60);
    // Case A: ample connections; load past the 4-worker nginx's capacity.
    let a = run_case(4, 4096, 30_000.0, 8, secs, 120);
    // Case B: one upstream connection per nginx instance; the cluster
    // admin capped the nginx group at 3 — scaling nginx cannot reach the
    // offered load, and memcached (the real constraint) is never scaled.
    let b = run_case(64, 1, 30_000.0, 3, secs, 121);
    format!(
        "{}\n{}",
        render("Fig 17 case A: nginx saturation (autoscaling helps)", &a),
        render(
            "Fig 17 case B: memcached backpressures nginx (autoscaling scales the wrong tier)",
            &b
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_b_nginx_busy_memcached_idle() {
        let b = run_case(64, 1, 30_000.0, 3, 20, 1);
        let last = b.rows.last().unwrap();
        assert!(last.4 > 0.9, "nginx occupancy {}", last.4);
        assert!(last.5 < 0.3, "memcached occupancy {}", last.5);
        // nginx span latency (includes blocked wait) far exceeds memcached's.
        assert!(
            last.1 > 10.0 * last.2.max(0.01),
            "nginx {} vs memcached {}",
            last.1,
            last.2
        );
    }

    #[test]
    fn case_a_scaling_improves_latency() {
        let a = run_case(4, 4096, 30_000.0, 8, 40, 2);
        assert!(a.scale_events > 0, "autoscaler must act");
        // After scaling, late-run nginx latency is below the early peak.
        let peak_early = a.rows[..15].iter().map(|r| r.1).fold(0.0, f64::max);
        let late = a.rows.last().unwrap().1;
        assert!(
            late < peak_early,
            "late {late} must improve on early peak {peak_early}"
        );
    }
}
