//! Reproductions of §7's in-text results and ablations of the simulator's
//! own design choices (DESIGN.md step 5).
//!
//! * [`rpc_vs_rest`] — §7 "quantify the performance trade-offs between
//!   RPC and RESTful APIs": an N-tier chain built once over Thrift RPC
//!   and once over HTTP/1; RPC is considerably cheaper at low load and
//!   sustains more goodput (blocking connections + heavier parsing hurt
//!   REST).
//! * [`critical_path_shift`] — §7 "latency breakdown per microservice":
//!   at low load the front-end dominates the Social Network's critical
//!   path, at high load the back-end databases and the services that
//!   manage them take over.
//! * [`quantum_ablation`] — ablation of the CPU scheduling quantum: with
//!   preemption disabled, multi-second jimp recognition jobs head-of-line
//!   block the drones' obstacle-avoidance even at trivial load.

use dsb_apps::swarm::{self, SwarmVariant};
use dsb_apps::{social, BuiltApp};
use dsb_core::{AppBuilder, RequestType, ServiceId, Step};
use dsb_net::Protocol;
use dsb_simcore::{Dist, SimDuration, SimTime};
use dsb_telemetry::critical_path_totals;
use dsb_workload::QueryMix;

use crate::harness::{build_sim, drive, make_cluster, max_qps_under_qos, merged_latency};
use crate::report::Table;
use crate::Scale;

/// Builds an N-tier chain where every inter-tier edge uses `protocol`.
fn chain(protocol: Protocol, tiers: usize) -> BuiltApp {
    let mut app = AppBuilder::new(match protocol {
        Protocol::ThriftRpc => "chain-rpc",
        _ => "chain-rest",
    });
    let mut downstream = None;
    for i in (0..tiers).rev() {
        let svc = app
            .service(&format!("tier{i}"))
            .workers(16)
            .protocol(protocol)
            .conn_limit(32)
            .build();
        let mut steps = vec![Step::work_us(50.0)];
        if let Some(d) = downstream {
            steps.push(Step::call(d, 512.0));
        }
        downstream = Some(app.endpoint(svc, "op", Dist::constant(1024.0), steps));
    }
    let spec = app.build();
    let frontend = ServiceId((tiers - 1) as u32);
    BuiltApp {
        mix: QueryMix::single(downstream.expect("tiers >= 1"), RequestType(0), 256.0),
        qos_p99: SimDuration::from_millis(5),
        order: (0..tiers).map(|i| ServiceId(i as u32)).collect(),
        frontend,
        spec,
    }
}

/// §7: RPC vs REST on a 5-tier chain. Returns the formatted comparison.
pub fn rpc_vs_rest(scale: Scale) -> String {
    let secs = scale.secs(8);
    let mut t = Table::new(
        "Sec 7: RPC vs RESTful APIs on a 5-tier chain",
        &[
            "protocol",
            "p50 low load (ms)",
            "p99 low load (ms)",
            "max QPS @ 5ms QoS",
        ],
    );
    for protocol in [Protocol::ThriftRpc, Protocol::Http1] {
        let app = chain(protocol, 5);
        let cluster = make_cluster(4);
        let (mut sim, mut load) = build_sim(&app, cluster.clone(), 200);
        drive(&mut sim, &mut load, 0, secs, 100.0);
        let h = merged_latency(&sim, secs / 3, secs);
        let goodput = max_qps_under_qos(&app, &cluster, &|_| {}, app.qos_p99, secs, 200);
        t.row_owned(vec![
            protocol.name().to_string(),
            format!("{:.3}", h.quantile(0.5) as f64 / 1e6),
            format!("{:.3}", h.quantile(0.99) as f64 / 1e6),
            format!("{goodput:.0}"),
        ]);
    }
    t.render()
}

/// §7: how the Social Network's critical path shifts between low and high
/// load. Returns `(low, high)` ranked attributions as `(service, share)`.
pub fn critical_path_ranking(
    app: &BuiltApp,
    setup: &dyn Fn(&mut dsb_core::Simulation),
    qps: f64,
    secs: u64,
    seed: u64,
) -> Vec<(String, f64)> {
    let mut cluster = make_cluster(8);
    cluster.trace_sample_prob = 0.05;
    let (mut sim, mut load) = build_sim(app, cluster, seed);
    setup(&mut sim);
    drive(&mut sim, &mut load, 0, secs, qps);
    sim.run_until_idle();
    let (attr, _) = critical_path_totals(
        sim.collector().sampled_traces().map(|(_, s)| s.as_slice()),
        app.spec.service_count(),
    );
    let grand: u128 = attr.iter().sum();
    let mut rows: Vec<(String, f64)> = attr
        .iter()
        .enumerate()
        .filter(|&(_, &ns)| ns > 0)
        .map(|(svc, &ns)| {
            (
                app.name_of(ServiceId(svc as u32)).to_string(),
                ns as f64 / grand.max(1) as f64,
            )
        })
        .collect();
    // Descending by share; ties broken by name so equal attributions
    // cannot reorder between runs.
    rows.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("no NaN")
            .then_with(|| a.0.cmp(&b.0))
    });
    rows
}

/// Provisioning that mirrors the paper's deployment for this study: the
/// stateless middle tiers get ample instances so the back-end databases
/// are the first to saturate.
pub fn db_bound_setup(app: &BuiltApp) -> impl Fn(&mut dsb_core::Simulation) + '_ {
    move |sim| {
        for i in 0..app.spec.service_count() {
            let svc = dsb_core::ServiceId(i as u32);
            if !app.name_of(svc).contains("mongodb") {
                let cur = sim.instance_count(svc);
                dsb_cluster::scale_to(sim, svc, cur * 4);
            }
        }
    }
}

/// Worker occupancy per service after driving `qps` for `secs`.
pub fn occupancy_at(
    app: &BuiltApp,
    setup: &dyn Fn(&mut dsb_core::Simulation),
    qps: f64,
    secs: u64,
    seed: u64,
) -> Vec<(String, f64)> {
    let mut cluster = make_cluster(8);
    cluster.trace_sample_prob = 0.0;
    let (mut sim, mut load) = build_sim(app, cluster, seed);
    setup(&mut sim);
    drive(&mut sim, &mut load, 0, secs, qps);
    (0..app.spec.service_count())
        .map(|i| {
            let svc = dsb_core::ServiceId(i as u32);
            (app.name_of(svc).to_string(), sim.occupancy(svc))
        })
        .collect()
}

/// §7 bottleneck identification, formatted: critical-path attribution at
/// low vs high load, plus worker occupancy at high load. At low load the
/// orchestrating front tiers dominate the path; at high load the back-end
/// databases saturate (occupancy → 1) and the wait *queues* pile up in
/// front of them — the paper's "performance is now limited by the
/// back-end databases and the services that manage them".
pub fn critical_path_shift(scale: Scale) -> String {
    let secs = scale.secs(10);
    let app = crate::harness::shrink(&social::social_network(), 4);
    let cluster = make_cluster(8);
    let setup = db_bound_setup(&app);
    let g = max_qps_under_qos(&app, &cluster, &setup, app.qos_p99, scale.secs(6), 201).max(50.0);
    let low = critical_path_ranking(&app, &setup, 0.1 * g, secs, 201);
    let high = critical_path_ranking(&app, &setup, 1.05 * g, secs, 201);
    let occ = occupancy_at(&app, &setup, 1.05 * g, scale.secs(6), 201);
    let mut t = Table::new(
        "Sec 7: Social Network critical-path attribution, low vs high load",
        &["rank", "low load", "share", "high load", "share"],
    );
    for i in 0..6 {
        t.row_owned(vec![
            (i + 1).to_string(),
            low.get(i).map_or(String::new(), |r| r.0.clone()),
            low.get(i)
                .map_or(String::new(), |r| format!("{:.1}%", r.1 * 100.0)),
            high.get(i).map_or(String::new(), |r| r.0.clone()),
            high.get(i)
                .map_or(String::new(), |r| format!("{:.1}%", r.1 * 100.0)),
        ]);
    }
    let mut t2 = Table::new(
        "Sec 7: worker occupancy at high load (the culprits saturate; the queues pile up in front)",
        &["service", "occupancy"],
    );
    let mut occ_sorted = occ;
    occ_sorted.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN"));
    for (name, o) in occ_sorted.iter().take(8) {
        t2.row_owned(vec![name.clone(), format!("{o:.2}")]);
    }
    format!(
        "{}
{}",
        t.render(),
        t2.render()
    )
}

/// Ablation: obstacle-avoidance p99 on the drones, with and without CPU
/// preemption, at light load. Returns `(with_quantum_ms, without_ms)`.
pub fn quantum_effect(scale: Scale, seed: u64) -> (f64, f64) {
    let secs = scale.secs(16).max(8);
    let run = |quantum: SimDuration| {
        let app = swarm::swarm(SwarmVariant::Edge);
        let mut cluster = make_cluster(4);
        cluster.cpu_quantum = quantum;
        cluster.trace_sample_prob = 0.0;
        let (mut sim, mut load) = build_sim(&app, cluster, seed);
        drive(&mut sim, &mut load, 0, secs, 8.0);
        sim.advance_to(SimTime::from_secs(secs));
        sim.request_stats(swarm::OBSTACLE_AVOID).map_or(0.0, |st| {
            st.windows.merged_range(2, secs as usize).quantile(0.99) as f64 / 1e6
        })
    };
    (run(SimDuration::from_millis(5)), run(SimDuration::MAX))
}

/// The quantum ablation, formatted.
pub fn quantum_ablation(scale: Scale) -> String {
    let (with_q, without_q) = quantum_effect(scale, 202);
    let mut t = Table::new(
        "Ablation: CPU preemption quantum vs drone obstacle-avoidance tail (8 QPS)",
        &["scheduler", "obstacle-avoidance p99 (ms)"],
    );
    t.row_owned(vec![
        "5ms round-robin quantum".into(),
        format!("{with_q:.1}"),
    ]);
    t.row_owned(vec!["run-to-completion".into(), format!("{without_q:.1}")]);
    format!(
        "{}(without preemption, multi-second image-recognition jobs head-of-line\n\
         block the safety-critical path on the drones' two cores)\n",
        t.render()
    )
}

/// §3.8: provision every end-to-end application until no tier saturates
/// first, and report how unevenly resources end up distributed ("the
/// ratio of resources between tiers varies significantly across services,
/// highlighting the need for application-aware resource management").
pub fn provisioning_ratios(scale: Scale) -> String {
    let secs = scale.secs(3).max(2);
    let mut t = Table::new(
        "Sec 3.8: provisioned instances per tier (top 5 per app) after balancing",
        &[
            "application",
            "calib QPS",
            "total insts",
            "most provisioned tiers",
        ],
    );
    let apps: Vec<(BuiltApp, f64)> = vec![
        (crate::harness::shrink(&social::social_network(), 4), 1500.0),
        (
            crate::harness::shrink(&dsb_apps::media::media_service(), 4),
            900.0,
        ),
        (
            crate::harness::shrink(&dsb_apps::ecommerce::ecommerce(), 4),
            1200.0,
        ),
        (
            crate::harness::shrink(&dsb_apps::banking::banking(), 4),
            1500.0,
        ),
        (
            crate::harness::shrink(&swarm::swarm(SwarmVariant::Cloud), 4),
            250.0,
        ),
    ];
    for (i, (app, qps)) in apps.into_iter().enumerate() {
        let cluster = make_cluster(8);
        let counts = crate::harness::provision_counts(&app, &cluster, qps, 210 + i as u64);
        let _ = secs;
        let total: usize = counts.iter().map(|&(_, n)| n).sum();
        let mut top: Vec<(String, usize)> = counts
            .iter()
            .map(|&(svc, n)| (app.name_of(svc).to_string(), n))
            .collect();
        top.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
        let summary = top
            .iter()
            .take(5)
            .map(|(n, c)| format!("{n} x{c}"))
            .collect::<Vec<_>>()
            .join(", ");
        t.row_owned(vec![
            app.spec.name.clone(),
            format!("{qps:.0}"),
            total.to_string(),
            summary,
        ]);
    }
    t.render()
}

/// §8's closing claim: the more complex the graph, the more impactful
/// slow servers are. Same per-service work and QoS, increasing depth;
/// goodput retained with 5 % slow servers falls as the graph deepens.
pub fn graph_complexity(scale: Scale) -> String {
    let secs = scale.secs(5).max(3);
    let mut t = Table::new(
        "Sec 8: slow-server impact vs graph complexity (5% slow servers)",
        &[
            "depth",
            "services",
            "goodput healthy",
            "goodput w/ slow",
            "retained",
        ],
    );
    for depth in [1u32, 3, 6] {
        let app = dsb_apps::synthetic::layered(dsb_apps::synthetic::LayeredSpec {
            depth,
            width: 4,
            fanout: 2,
            ..Default::default()
        });
        let cluster = make_cluster(20);
        let healthy = max_qps_under_qos(&app, &cluster, &|_| {}, app.qos_p99, secs, 220);
        let slow = max_qps_under_qos(
            &app,
            &cluster,
            &|sim| {
                let mut rng = dsb_simcore::Rng::new(220);
                dsb_cluster::slow_down_machines(sim, 0.05, 0.8, &mut rng);
            },
            app.qos_p99,
            secs,
            220,
        );
        t.row_owned(vec![
            depth.to_string(),
            app.spec.service_count().to_string(),
            format!("{healthy:.0}"),
            format!("{slow:.0}"),
            format!("{:.2}", slow / healthy.max(1.0)),
        ]);
    }
    t.render()
}

/// All §3.8/§7 extras + ablations.
pub fn run(scale: Scale) -> String {
    format!(
        "{}\n{}\n{}\n{}\n{}",
        rpc_vs_rest(scale),
        critical_path_shift(scale),
        provisioning_ratios(scale),
        quantum_ablation(scale),
        graph_complexity(scale)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rpc_beats_rest_on_both_axes() {
        let secs = 3;
        let rpc = chain(Protocol::ThriftRpc, 5);
        let rest = chain(Protocol::Http1, 5);
        let cluster = make_cluster(4);
        let low = |app: &BuiltApp| {
            let (mut sim, mut load) = build_sim(app, cluster.clone(), 1);
            drive(&mut sim, &mut load, 0, secs, 100.0);
            merged_latency(&sim, 1, secs).quantile(0.5)
        };
        let rpc_p50 = low(&rpc);
        let rest_p50 = low(&rest);
        assert!(
            rpc_p50 < rest_p50,
            "RPC p50 {rpc_p50} must beat REST {rest_p50} at low load"
        );
        let g_rpc =
            crate::harness::max_qps_under_qos_probes(&rpc, &cluster, &|_| {}, rpc.qos_p99, 2, 1, 3);
        let g_rest = crate::harness::max_qps_under_qos_probes(
            &rest,
            &cluster,
            &|_| {},
            rest.qos_p99,
            2,
            1,
            3,
        );
        assert!(
            g_rpc > g_rest,
            "RPC goodput {g_rpc} must beat REST {g_rest}"
        );
    }

    #[test]
    fn quantum_protects_latency_critical_work() {
        // A single quick-scale run measures the p99 of ~16 obstacle
        // requests: whether one collides with a multi-second recognition
        // job on its drone is a coin flip per seed. Aggregate a few seeds
        // so the test measures the scheduling policy, not one coin.
        let mut with_q = 0.0;
        let mut without_q = 0.0;
        for seed in [1, 2, 3] {
            let (w, wo) = quantum_effect(Scale::Quick, seed);
            with_q += w;
            without_q += wo;
        }
        assert!(with_q > 0.0);
        assert!(
            without_q > 3.0 * with_q,
            "run-to-completion {without_q}ms must be far worse than 5ms quantum {with_q}ms"
        );
    }

    #[test]
    fn backend_saturates_at_high_load_and_queues_move_frontward() {
        let app = crate::harness::shrink(&social::social_network(), 4);
        let cluster = make_cluster(8);
        let setup = db_bound_setup(&app);
        // A coarse search (3 bisections) is enough: the probes below sit
        // well clear of the saturation point on both sides.
        let g =
            crate::harness::max_qps_under_qos_probes(&app, &cluster, &setup, app.qos_p99, 3, 2, 3)
                .max(50.0);
        let occ = |qps: f64| {
            let rows = occupancy_at(&app, &setup, qps, 5, 2);
            rows.into_iter()
                .find(|r| r.0 == "mongodb-posts")
                .map_or(0.0, |r| r.1)
        };
        // The posts DB is the culprit: idle at low load, pinned well
        // past saturation.
        let low = occ(0.1 * g);
        let high = occ(1.3 * g);
        assert!(low < 0.5, "mongodb-posts occupancy at low load: {low}");
        assert!(high > 0.9, "mongodb-posts occupancy at high load: {high}");
        // And the end-to-end wait accumulates toward the front of the
        // graph: the front tiers' critical-path share grows under load.
        let share = |rows: &[(String, f64)], name: &str| {
            rows.iter().find(|r| r.0 == name).map_or(0.0, |r| r.1)
        };
        let cp_low = critical_path_ranking(&app, &setup, 0.1 * g, 5, 2);
        let cp_high = critical_path_ranking(&app, &setup, 1.3 * g, 5, 2);
        let front_low = share(&cp_low, "nginx") + share(&cp_low, "php-fpm");
        let front_high = share(&cp_high, "nginx") + share(&cp_high, "php-fpm");
        assert!(
            front_high > front_low,
            "queueing must pile frontward: {front_low} -> {front_high}"
        );
    }
}
