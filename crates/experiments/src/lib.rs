//! # dsb-experiments — regenerating the paper's evaluation
//!
//! One module (and one binary) per table/figure of the DeathStarBench
//! paper. Each module exposes `run(scale) -> String`; the string is the
//! formatted table/series the paper's figure plots. The `all` binary runs
//! everything in order.
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `table01` | Table 1 — suite composition |
//! | `fig03` | Fig. 3 — network vs application processing |
//! | `fig09` | Fig. 9 — Swarm edge vs cloud |
//! | `fig10` | Fig. 10 — cycle breakdown + IPC |
//! | `fig11` | Fig. 11 — L1-i MPKI |
//! | `fig12` | Fig. 12 — tail latency vs load × frequency |
//! | `fig13` | Fig. 13 — Xeon vs ThunderX |
//! | `fig14` | Fig. 14 — OS/user/libs breakdown |
//! | `fig15` | Fig. 15 — network processing share, low/high load |
//! | `fig16` | Fig. 16 — FPGA RPC acceleration |
//! | `fig17` | Fig. 17 — two-tier backpressure |
//! | `fig18` | Fig. 18 — dependency graphs |
//! | `fig19` | Fig. 19 — cascading QoS violations |
//! | `fig20` | Fig. 20 — recovery vs monolith |
//! | `fig21` | Fig. 21 — EC2 vs Lambda |
//! | `fig22` | Fig. 22 — tail at scale |
//!
//! The `extras` binary adds §7's in-text results (RPC vs REST,
//! critical-path shift) and simulator ablations. The `dsb-report` binary
//! (module [`observe`]) renders a telemetry report — JSONL or a
//! `dsb-top`-style table with SLO alerts and root-cause lines — for any
//! built-in app.
//!
//! Pass `--quick` (or set `DSB_SCALE=quick`) for the scaled-down variant
//! used by the Criterion benches.

#![warn(missing_docs)]

pub mod chaos;
pub mod extras;
pub mod fig03;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod fig20;
pub mod fig21;
pub mod fig22;
pub mod harness;
pub mod observe;
pub mod report;
pub mod table01;

/// How big an experiment to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Scaled-down: used by `cargo bench` and CI smoke runs.
    Quick,
    /// Full: the EXPERIMENTS.md numbers.
    Full,
}

impl Scale {
    /// Reads the scale from argv (`--quick`) or `DSB_SCALE=quick`.
    pub fn from_env() -> Scale {
        let quick = std::env::args().any(|a| a == "--quick")
            || std::env::var("DSB_SCALE").is_ok_and(|v| v.eq_ignore_ascii_case("quick"));
        if quick {
            Scale::Quick
        } else {
            Scale::Full
        }
    }

    /// Scales a duration-in-seconds parameter. Quick is sized so the
    /// whole tier-1 test pass (which replays two figures end to end)
    /// fits the 120-second CI budget on a single core.
    pub fn secs(self, full: u64) -> u64 {
        match self {
            Scale::Quick => (full / 8).max(2),
            Scale::Full => full,
        }
    }

    /// Scales a sweep-point count.
    pub fn points(self, full: usize) -> usize {
        match self {
            Scale::Quick => (full / 2).max(2),
            Scale::Full => full,
        }
    }
}
