//! Shared experiment machinery: cluster construction, sliced load driving,
//! warmup-aware quantiles, provisioning, and goodput (max-QPS-under-QoS)
//! search.

use dsb_apps::BuiltApp;
use dsb_core::{ClusterSpec, MachineSpec, RequestType, ServiceId, Simulation};
use dsb_simcore::{Histogram, SimDuration, SimTime};
use dsb_workload::{OpenLoop, UserPopulation};

/// Highest request-type id used by any app in the suite.
pub const MAX_RTYPE: u32 = 16;

/// A datacenter of `n_xeon` servers across two racks, plus the 24 drone
/// edge devices (needed by the Swarm apps; harmless otherwise).
pub fn make_cluster(n_xeon: u32) -> ClusterSpec {
    let mut c = ClusterSpec::xeon_cluster(n_xeon, 2);
    for _ in 0..24 {
        c.machines.push(MachineSpec::edge_device());
    }
    c.trace_sample_prob = 0.002;
    c
}

/// Like [`make_cluster`] but with Cavium ThunderX servers.
pub fn make_thunderx_cluster(n: u32) -> ClusterSpec {
    let mut c = make_cluster(n);
    for m in &mut c.machines {
        if matches!(m.zone, dsb_net::Zone::Rack(_)) {
            *m = MachineSpec::thunderx_server(match m.zone {
                dsb_net::Zone::Rack(r) => r,
                _ => 0,
            });
        }
    }
    c
}

/// Builds a simulation plus an open-loop generator for the app's mix.
pub fn build_sim(app: &BuiltApp, cluster: ClusterSpec, seed: u64) -> (Simulation, OpenLoop) {
    build_sim_with_users(app, cluster, seed, UserPopulation::uniform(1000))
}

/// [`build_sim`] with a custom user population (skew experiments).
pub fn build_sim_with_users(
    app: &BuiltApp,
    cluster: ClusterSpec,
    seed: u64,
    users: UserPopulation,
) -> (Simulation, OpenLoop) {
    let sim = Simulation::new(app.spec.clone(), cluster, seed);
    let load = OpenLoop::new(app.mix.clone(), users, seed ^ 0xFEED);
    (sim, load)
}

/// Drives `qps` of the app's mix over `[from_s, to_s)` in one-second
/// slices (injection happens just-in-time, so controllers can react).
pub fn drive(sim: &mut Simulation, load: &mut OpenLoop, from_s: u64, to_s: u64, qps: f64) {
    drive_ticked(sim, load, from_s, to_s, |_| qps, &mut |_, _| {});
}

/// [`drive`] with a time-varying rate and a per-second controller tick.
pub fn drive_ticked(
    sim: &mut Simulation,
    load: &mut OpenLoop,
    from_s: u64,
    to_s: u64,
    qps: impl Fn(SimTime) -> f64,
    tick: &mut dyn FnMut(&mut Simulation, u64),
) {
    for s in from_s..to_s {
        let a = SimTime::from_secs(s);
        let b = SimTime::from_secs(s + 1);
        load.drive_fn(sim, a, b, &qps);
        sim.advance_to(b);
        tick(sim, s);
    }
}

/// Merges end-to-end latency across all request types over windows
/// `[from_s, to_s)` (seconds == windows at the default 1 s width).
pub fn merged_latency(sim: &Simulation, from_s: u64, to_s: u64) -> Histogram {
    let mut h = Histogram::compact();
    for t in 0..MAX_RTYPE {
        if let Some(st) = sim.request_stats(RequestType(t)) {
            h.merge(&st.windows.merged_range(from_s as usize, to_s as usize));
        }
    }
    h
}

/// The merged p99 over `[from_s, to_s)`.
pub fn merged_p99(sim: &Simulation, from_s: u64, to_s: u64) -> SimDuration {
    merged_latency(sim, from_s, to_s).quantile_duration(0.99)
}

/// `(issued, completed, rejected)` across all request types.
pub fn totals(sim: &Simulation) -> (u64, u64, u64) {
    let mut t = (0, 0, 0);
    for i in 0..MAX_RTYPE {
        if let Some(st) = sim.request_stats(RequestType(i)) {
            t.0 += st.issued;
            t.1 += st.completed;
            t.2 += st.rejected;
        }
    }
    t
}

/// Runs the §3.8 provisioning methodology on a scratch simulation and
/// returns the per-service instance counts it converged to.
pub fn provision_counts(
    app: &BuiltApp,
    cluster: &ClusterSpec,
    qps: f64,
    seed: u64,
) -> Vec<(ServiceId, usize)> {
    let (mut sim, mut load) = build_sim(app, cluster.clone(), seed);
    let services: Vec<ServiceId> = (0..app.spec.service_count())
        .map(|i| ServiceId(i as u32))
        .collect();
    dsb_cluster::provision(
        &mut sim,
        |sim, from, to| {
            load.drive_fn(sim, from, to, |_| qps);
        },
        &services,
        0.7,
        SimDuration::from_secs(3),
        8,
    );
    services
        .iter()
        .map(|&s| (s, sim.instance_count(s)))
        .collect()
}

/// Applies provisioned instance counts to a fresh simulation.
pub fn apply_counts(sim: &mut Simulation, counts: &[(ServiceId, usize)]) {
    for &(svc, n) in counts {
        dsb_cluster::scale_to(sim, svc, n);
    }
}

/// Returns a copy of `app` with every fixed worker pool divided by
/// `factor` (min 1). Latency at low load is unchanged, but capacity drops
/// proportionally — the standard trick to keep goodput searches and
/// overload experiments cheap while preserving who-saturates-first shapes.
pub fn shrink(app: &BuiltApp, factor: u32) -> BuiltApp {
    let mut out = app.clone();
    for svc in &mut out.spec.services {
        if let dsb_core::WorkerPolicy::Fixed(n) = svc.workers {
            svc.workers = dsb_core::WorkerPolicy::Fixed((n / factor).max(1));
        }
        svc.conn_limit = (svc.conn_limit / factor).max(1);
    }
    out
}

/// Outcome of one saturation probe.
#[derive(Debug, Clone, Copy)]
pub struct Probe {
    /// Offered load.
    pub qps: f64,
    /// Steady-state p99 (warmup excluded).
    pub p99: SimDuration,
    /// Completed / issued.
    pub completion: f64,
}

/// Runs the app at `qps` for `secs` seconds (first `warmup` excluded from
/// quantiles) with an arbitrary pre-run setup hook.
pub fn probe(
    app: &BuiltApp,
    cluster: &ClusterSpec,
    setup: &dyn Fn(&mut Simulation),
    qps: f64,
    secs: u64,
    warmup: u64,
    seed: u64,
) -> Probe {
    let (mut sim, mut load) = build_sim(app, cluster.clone(), seed);
    setup(&mut sim);
    drive(&mut sim, &mut load, 0, secs, qps);
    // Cool-down: let in-flight requests finish so the completion check
    // measures saturation backlogs, not the probe's edge (requests that
    // legitimately take seconds would otherwise read as "lost").
    sim.advance_to(SimTime::from_secs(secs + 3));
    let (issued, completed, _) = totals(&sim);
    Probe {
        qps,
        p99: merged_p99(&sim, warmup, secs),
        completion: if issued == 0 {
            0.0
        } else {
            completed as f64 / issued as f64
        },
    }
}

/// Finds the maximum sustainable QPS for which the steady-state p99 meets
/// `qos` and ≥ 95 % of requests complete within the run: geometric ramp-up
/// followed by a binary search. This is the paper's "max QPS at QoS"
/// goodput metric (Figs. 13, 22b, 22c).
pub fn max_qps_under_qos(
    app: &BuiltApp,
    cluster: &ClusterSpec,
    setup: &dyn Fn(&mut Simulation),
    qos: SimDuration,
    secs: u64,
    seed: u64,
) -> f64 {
    max_qps_under_qos_probes(app, cluster, setup, qos, secs, seed, 5)
}

/// [`max_qps_under_qos`] with an explicit bisection count. Each
/// bisection probe simulates `secs + 3` seconds near saturation — the
/// most expensive probes of the search — so quick-scale callers trade
/// goodput precision for wall time by passing 3 instead of the
/// default 5.
pub fn max_qps_under_qos_probes(
    app: &BuiltApp,
    cluster: &ClusterSpec,
    setup: &dyn Fn(&mut Simulation),
    qos: SimDuration,
    secs: u64,
    seed: u64,
    bisections: u32,
) -> f64 {
    let warmup = (secs / 3).max(1);
    let ok = |p: &Probe| p.p99 <= qos && p.completion >= 0.95;
    let mut lo = 0.0f64;
    let mut qps = 25.0f64;
    let mut hi = None;
    for _ in 0..10 {
        let p = probe(app, cluster, setup, qps, secs, warmup, seed);
        if ok(&p) {
            lo = qps;
            qps *= 4.0;
        } else {
            hi = Some(qps);
            break;
        }
    }
    let Some(mut hi) = hi else {
        return lo;
    };
    if lo == 0.0 {
        // Even the smallest probe violates QoS.
        return 0.0;
    }
    for _ in 0..bisections {
        let mid = (lo + hi) / 2.0;
        let p = probe(app, cluster, setup, mid, secs, warmup, seed);
        if ok(&p) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsb_apps::singles;

    #[test]
    fn drive_and_measure() {
        let app = singles::memcached();
        let (mut sim, mut load) = build_sim(&app, make_cluster(2), 1);
        drive(&mut sim, &mut load, 0, 4, 500.0);
        sim.run_until_idle();
        let (issued, completed, _) = totals(&sim);
        assert!(issued > 1500);
        assert_eq!(issued, completed);
        let p99 = merged_p99(&sim, 1, 4);
        assert!(p99 > SimDuration::from_micros(100));
        assert!(p99 < SimDuration::from_millis(5));
    }

    #[test]
    fn goodput_search_finds_saturation() {
        let app = singles::xapian();
        let cluster = make_cluster(2);
        let qps = max_qps_under_qos(&app, &cluster, &|_| {}, SimDuration::from_millis(4), 4, 7);
        // 16 workers x ~600us -> capacity around 26k/s; QoS binds earlier.
        assert!(qps > 100.0, "goodput {qps}");
        assert!(qps < 200_000.0, "goodput {qps}");
        // A slower platform yields lower goodput.
        let slow = max_qps_under_qos(
            &app,
            &cluster,
            &|sim| sim.set_all_frequencies(1.0),
            SimDuration::from_millis(4),
            4,
            7,
        );
        assert!(slow < qps, "slow {slow} vs fast {qps}");
    }

    #[test]
    fn provisioning_counts_apply() {
        let app = dsb_apps::twotier::twotier(8, 1024);
        let cluster = make_cluster(4);
        let counts = provision_counts(&app, &cluster, 12_000.0, 3);
        let (mut sim, _) = build_sim(&app, cluster, 3);
        apply_counts(&mut sim, &counts);
        for &(svc, n) in &counts {
            assert!(sim.instance_count(svc) >= n.min(1));
        }
    }
}
