//! Fig. 11 — L1 instruction-cache pressure (MPKI) per microservice for
//! Social Network and E-commerce, against the single-tier services and the
//! monolith.
//!
//! The paper's observation: nginx/memcached/MongoDB and *especially* the
//! monolith retain high i-cache pressure, while the single-concern
//! microservices sit far lower thanks to their small code footprints.

use dsb_apps::{ecommerce, monolith, social};

use crate::report::{f1, Table};
use crate::Scale;

fn rows(t: &mut Table, app: &dsb_apps::BuiltApp, services: &[&str]) {
    for name in services {
        let id = app.service(name);
        let p = app.spec.service(id).profile;
        t.row_owned(vec![
            app.spec.name.clone(),
            (*name).to_string(),
            f1(p.l1i_mpki),
        ]);
    }
}

/// Regenerates Fig. 11.
pub fn run(_scale: Scale) -> String {
    let mut t = Table::new(
        "Fig 11: L1-i MPKI per service (small services => small footprints)",
        &["application", "service", "L1i MPKI"],
    );
    let social = social::social_network();
    rows(
        &mut t,
        &social,
        &[
            "nginx",
            "text",
            "image",
            "uniqueID",
            "userTag",
            "urlShorten",
            "video",
            "recommender",
            "login",
            "readPost",
            "writeGraph",
            "memcached-posts",
            "mongodb-posts",
        ],
    );
    let ecom = ecommerce::ecommerce();
    rows(
        &mut t,
        &ecom,
        &[
            "front-end",
            "login",
            "orders",
            "search",
            "cart",
            "wishlist",
            "catalogue",
            "recommender",
            "shipping",
            "payment",
            "invoicing",
            "queueMaster",
            "memcached-catalogue",
            "mongodb-catalogue",
        ],
    );
    let mono = monolith::social_monolith();
    rows(&mut t, &mono, &["monolith"]);
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monolith_dominates_everything() {
        let social = social::social_network();
        let mono = monolith::social_monolith();
        let mono_mpki = mono.spec.service(mono.service("monolith")).profile.l1i_mpki;
        for s in &social.spec.services {
            assert!(
                mono_mpki > s.profile.l1i_mpki,
                "monolith {mono_mpki} vs {} {}",
                s.name,
                s.profile.l1i_mpki
            );
        }
    }

    #[test]
    fn wishlist_is_negligible() {
        // Paper: "simple microservices, such as the wishlist, for which
        // i-cache misses are practically negligible".
        let ecom = ecommerce::ecommerce();
        let wishlist = ecom.spec.service(ecom.service("wishlist")).profile.l1i_mpki;
        let frontend = ecom
            .spec
            .service(ecom.service("front-end"))
            .profile
            .l1i_mpki;
        assert!(wishlist < 3.0, "wishlist {wishlist}");
        assert!(wishlist < frontend);
    }

    #[test]
    fn output_contains_both_apps() {
        let out = run(Scale::Quick);
        assert!(out.contains("social-network"));
        assert!(out.contains("e-commerce"));
        assert!(out.contains("monolith"));
    }
}
