//! Fig. 21 — microservices on serverless frameworks.
//!
//! Top: latency distribution (p5/p25/p50/p75/p95) and cost for every
//! end-to-end service on EC2 containers, AWS-Lambda-style functions with
//! S3 state passing, and Lambda with remote-memory state passing.
//! Expected shape: Lambda(S3) ≫ Lambda(mem) > EC2 in latency; Lambda costs
//! roughly an order of magnitude less at this (modest, intermittent) load.
//!
//! Bottom: a compressed diurnal load pattern on Social Network — the EC2
//! threshold autoscaler lags the ramp, Lambda absorbs it per-request.

use dsb_apps::{banking, ecommerce, media, social, swarm, BuiltApp};
use dsb_cluster::{Autoscaler, ScalePolicy};
use dsb_core::ServiceId;
use dsb_serverless::{ec2_cost, lambda_cost_for_run, to_serverless, ExecutionMode, Pricing};
use dsb_simcore::SimDuration;
use dsb_workload::DiurnalPattern;

use crate::harness::{build_sim, drive, drive_ticked, make_cluster, merged_latency, MAX_RTYPE};
use crate::report::Table;
use crate::Scale;

struct ModeResult {
    q: [f64; 5], // p5/p25/p50/p75/p95 in ms
    cost_usd: f64,
}

fn run_mode(app: &BuiltApp, mode: ExecutionMode, qps: f64, secs: u64, seed: u64) -> ModeResult {
    let backends: Vec<ServiceId> = app
        .spec
        .services
        .iter()
        .enumerate()
        .filter(|(_, s)| {
            s.name.contains("memcached") || s.name.contains("mongodb") || s.name.contains("mysql")
        })
        .map(|(i, _)| ServiceId(i as u32))
        .collect();
    let rewritten = to_serverless(&app.spec, mode, &backends);
    let mut sapp = app.clone();
    sapp.spec = rewritten.app;
    let mut cluster = make_cluster(8);
    cluster.trace_sample_prob = 0.0;
    let (mut sim, mut load) = build_sim(&sapp, cluster, seed);
    drive(&mut sim, &mut load, 0, secs, qps);
    sim.run_until_idle();
    let h = merged_latency(&sim, 1, secs + 60);
    let q = [
        h.quantile(0.05) as f64 / 1e6,
        h.quantile(0.25) as f64 / 1e6,
        h.quantile(0.50) as f64 / 1e6,
        h.quantile(0.75) as f64 / 1e6,
        h.quantile(0.95) as f64 / 1e6,
    ];
    // Normalize cost to the paper's 10-minute runs.
    let factor = 600.0 / secs as f64;
    let cost_usd = match mode {
        ExecutionMode::Ec2 => {
            ec2_cost(&sim, SimDuration::from_secs(secs), &Pricing::default()).total() * factor
        }
        _ => {
            lambda_cost_for_run(
                &sim,
                rewritten.store,
                mode == ExecutionMode::LambdaS3,
                SimDuration::from_secs(secs),
                &Pricing::default(),
            )
            .total()
                * factor
        }
    };
    ModeResult { q, cost_usd }
}

/// Regenerates Fig. 21.
pub fn run(scale: Scale) -> String {
    let secs = scale.secs(30);
    let mut t = Table::new(
        "Fig 21 (top): latency quartiles (ms) + cost per 10min, per execution mode",
        &[
            "application",
            "mode",
            "p5",
            "p25",
            "p50",
            "p75",
            "p95",
            "cost ($)",
        ],
    );
    let apps: Vec<(BuiltApp, f64)> = vec![
        (social::social_network(), 60.0),
        (media::media_service(), 50.0),
        (ecommerce::ecommerce(), 50.0),
        (banking::banking(), 50.0),
        (swarm::swarm(swarm::SwarmVariant::Cloud), 25.0),
    ];
    for (i, (app, qps)) in apps.iter().enumerate() {
        for mode in [
            ExecutionMode::Ec2,
            ExecutionMode::LambdaS3,
            ExecutionMode::LambdaMem,
        ] {
            let r = run_mode(app, mode, *qps, secs, 150 + i as u64);
            t.row_owned(vec![
                app.spec.name.clone(),
                mode.label().to_string(),
                format!("{:.1}", r.q[0]),
                format!("{:.1}", r.q[1]),
                format!("{:.1}", r.q[2]),
                format!("{:.1}", r.q[3]),
                format!("{:.1}", r.q[4]),
                format!("{:.2}", r.cost_usd),
            ]);
        }
    }

    // Bottom: diurnal pattern, EC2 + autoscaler vs Lambda(mem).
    let secs2 = scale.secs(120);
    let pattern = DiurnalPattern {
        low_qps: 60.0,
        high_qps: 420.0,
        period: SimDuration::from_secs(secs2),
    };
    let mut tb = Table::new(
        "Fig 21 (bottom): diurnal load — per-second p99 (ms)",
        &["t (s)", "load (QPS)", "EC2", "Lambda (mem)"],
    );
    let series = |serverless: bool, seed: u64| -> Vec<f64> {
        let app = social::social_network();
        let (sapp, _store) = if serverless {
            let backends: Vec<ServiceId> = app
                .spec
                .services
                .iter()
                .enumerate()
                .filter(|(_, s)| s.name.contains("memcached") || s.name.contains("mongodb"))
                .map(|(i, _)| ServiceId(i as u32))
                .collect();
            let r = to_serverless(&app.spec, ExecutionMode::LambdaMem, &backends);
            let mut a = app.clone();
            a.spec = r.app;
            (a, r.store)
        } else {
            (app.clone(), None)
        };
        let mut cluster = make_cluster(10);
        cluster.trace_sample_prob = 0.0;
        let (mut sim, mut load) = build_sim(&sapp, cluster, seed);
        let mut scaler = Autoscaler::new(ScalePolicy {
            cooldown: SimDuration::from_secs(15),
            max_instances: 30,
            ..ScalePolicy::default()
        });
        if !serverless {
            for i in 0..sapp.spec.service_count() {
                scaler.manage(ServiceId(i as u32));
            }
        }
        let mut out = Vec::new();
        {
            let out = &mut out;
            let scaler = &mut scaler;
            drive_ticked(
                &mut sim,
                &mut load,
                0,
                secs2,
                |t| pattern.qps(t),
                &mut |sim, s| {
                    scaler.tick(sim);
                    let w = s as usize;
                    let mut h = dsb_simcore::Histogram::compact();
                    for t in 0..MAX_RTYPE {
                        if let Some(st) = sim.request_stats(dsb_core::RequestType(t)) {
                            h.merge(&st.windows.merged_range(w, w + 1));
                        }
                    }
                    out.push(h.quantile(0.99) as f64 / 1e6);
                },
            );
        }
        out
    };
    let ec2 = series(false, 160);
    let lambda = series(true, 160);
    for s in 0..secs2 as usize {
        tb.row_owned(vec![
            s.to_string(),
            format!(
                "{:.0}",
                pattern.qps(dsb_simcore::SimTime::from_secs(s as u64))
            ),
            format!("{:.2}", ec2[s]),
            format!("{:.2}", lambda[s]),
        ]);
    }
    format!("{}\n{}", t.render(), tb.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s3_much_slower_mem_in_between_lambda_cheaper() {
        let app = social::social_network();
        let ec2 = run_mode(&app, ExecutionMode::Ec2, 40.0, 10, 1);
        let s3 = run_mode(&app, ExecutionMode::LambdaS3, 40.0, 10, 1);
        let mem = run_mode(&app, ExecutionMode::LambdaMem, 40.0, 10, 1);
        assert!(
            s3.q[2] > 2.0 * mem.q[2],
            "S3 median {} must far exceed mem {}",
            s3.q[2],
            mem.q[2]
        );
        assert!(
            mem.q[2] > ec2.q[2],
            "mem median {} must exceed EC2 {}",
            mem.q[2],
            ec2.q[2]
        );
        assert!(
            s3.cost_usd < ec2.cost_usd / 3.0,
            "lambda {} must be much cheaper than EC2 {}",
            s3.cost_usd,
            ec2.cost_usd
        );
    }
}
