//! Fig. 16 — offloading RPC/TCP processing to a bump-in-the-wire FPGA.
//!
//! The paper: network processing latency improves 10–68× over native TCP;
//! end-to-end tail latency improves between 43 % and 2.2×. We run each
//! app natively and with the accelerator and report both ratios.

use dsb_apps::{banking, ecommerce, media, social, swarm, BuiltApp};
use dsb_core::ServiceId;
use dsb_net::FpgaOffload;
use dsb_simcore::SimDuration;

use crate::harness::{build_sim, drive, make_cluster, merged_p99};
use crate::report::Table;
use crate::Scale;

struct Outcome {
    net_ns_per_span: f64,
    p99: SimDuration,
}

fn run_one(
    app: &BuiltApp,
    qps: f64,
    secs: u64,
    seed: u64,
    offload: Option<FpgaOffload>,
) -> Outcome {
    let (mut sim, mut load) = build_sim(app, make_cluster(8), seed);
    if let Some(o) = offload {
        sim.set_offload(o);
    }
    drive(&mut sim, &mut load, 0, secs, qps);
    let p99 = merged_p99(&sim, secs / 3, secs);
    sim.run_until_idle();
    let mut net = 0u128;
    let mut spans = 0u64;
    for i in 0..app.spec.service_count() {
        if let Some(s) = sim.collector().service(ServiceId(i as u32).0) {
            net += s.net_ns;
            spans += s.spans;
        }
    }
    Outcome {
        net_ns_per_span: net as f64 / spans.max(1) as f64,
        p99,
    }
}

/// Regenerates Fig. 16.
///
/// Loads self-calibrate to 80 % of each app's saturation, where freeing
/// the kernel's TCP cycles visibly relieves queueing (the paper measures
/// under load as well). The TCP-stack processing latency itself improves
/// by the configured offload factor (50x; the paper's FPGA measures
/// 10–68x depending on payload); the "net time / RPC" column additionally
/// includes serialization, which stays on the host.
pub fn run(scale: Scale) -> String {
    let secs = scale.secs(10);
    let mut t = Table::new(
        "Fig 16: FPGA RPC acceleration (50x TCP-stack speedup), at 0.8x saturation",
        &[
            "application",
            "net time/RPC speedup",
            "end-to-end p99 speedup",
            "p99 native (ms)",
            "p99 FPGA (ms)",
        ],
    );
    let cases: Vec<BuiltApp> = vec![
        social::social_network(),
        media::media_service(),
        ecommerce::ecommerce(),
        banking::banking(),
        swarm::swarm(swarm::SwarmVariant::Cloud),
        swarm::swarm(swarm::SwarmVariant::Edge),
    ];
    for (i, full) in cases.into_iter().enumerate() {
        let app = crate::harness::shrink(&full, 4);
        let g = crate::harness::max_qps_under_qos(
            &app,
            &crate::harness::make_cluster(8),
            &|_| {},
            app.qos_p99,
            scale.secs(6),
            80 + i as u64,
        )
        .max(20.0);
        let qps = 0.8 * g;
        let native = run_one(&app, qps, secs, 80 + i as u64, None);
        let fpga = run_one(
            &app,
            qps,
            secs,
            80 + i as u64,
            Some(FpgaOffload::with_speedup(50.0)),
        );
        let net_speedup = native.net_ns_per_span / fpga.net_ns_per_span.max(1.0);
        let e2e = native.p99.as_nanos() as f64 / fpga.p99.as_nanos().max(1) as f64;
        t.row_owned(vec![
            app.spec.name.clone(),
            format!("{net_speedup:.1}x"),
            format!("{e2e:.2}x"),
            format!("{:.2}", native.p99.as_millis_f64()),
            format!("{:.2}", fpga.p99.as_millis_f64()),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offload_speeds_up_network_processing_and_tail() {
        let app = social::social_network();
        let native = run_one(&app, 150.0, 6, 1, None);
        let fpga = run_one(&app, 150.0, 6, 1, Some(FpgaOffload::with_speedup(50.0)));
        let net_speedup = native.net_ns_per_span / fpga.net_ns_per_span.max(1.0);
        assert!(
            net_speedup > 2.0,
            "net processing speedup {net_speedup} (native {} vs fpga {})",
            native.net_ns_per_span,
            fpga.net_ns_per_span
        );
        assert!(
            fpga.p99 < native.p99,
            "fpga {:?} vs native {:?}",
            fpga.p99,
            native.p99
        );
    }
}
