//! Fig. 10 — top-down cycle breakdown and IPC per microservice for Social
//! Network and E-commerce, plus the monolith.
//!
//! Per-service bars come from the analytic top-down model; the end-to-end
//! bar weights each service by the cycles it actually consumed in a run
//! (the paper's "End-to-End" bar aggregates the same way).

use dsb_apps::{ecommerce, monolith, social, BuiltApp};
use dsb_core::ServiceId;
use dsb_uarch::CoreModel;

use crate::harness::{build_sim, drive, make_cluster};
use crate::report::{f2, pct, Table};
use crate::Scale;

fn service_row(t: &mut Table, app: &BuiltApp, name: &str) {
    let p = app.spec.service(app.service(name)).profile;
    let b = CoreModel::xeon().breakdown(&p);
    t.row_owned(vec![
        app.spec.name.clone(),
        name.to_string(),
        pct(b.frontend),
        pct(b.bad_spec),
        pct(b.backend),
        pct(b.retiring),
        f2(b.ipc),
    ]);
}

fn end_to_end_row(t: &mut Table, app: &BuiltApp, qps: f64, secs: u64, seed: u64) {
    let (mut sim, mut load) = build_sim(app, make_cluster(8), seed);
    drive(&mut sim, &mut load, 0, secs, qps);
    sim.run_until_idle();
    let xeon = CoreModel::xeon();
    let mut w = [0.0f64; 4];
    let mut ipc_num = 0.0;
    let mut total = 0.0;
    for i in 0..app.spec.service_count() {
        let sid = ServiceId(i as u32);
        let cycles: f64 = sim.service_stats(sid).cycles.iter().sum();
        if cycles == 0.0 {
            continue;
        }
        let b = xeon.breakdown(&app.spec.service(sid).profile);
        w[0] += cycles * b.frontend;
        w[1] += cycles * b.bad_spec;
        w[2] += cycles * b.backend;
        w[3] += cycles * b.retiring;
        ipc_num += cycles * b.ipc;
        total += cycles;
    }
    t.row_owned(vec![
        app.spec.name.clone(),
        "End-to-End".to_string(),
        pct(w[0] / total),
        pct(w[1] / total),
        pct(w[2] / total),
        pct(w[3] / total),
        f2(ipc_num / total),
    ]);
}

/// Regenerates Fig. 10.
pub fn run(scale: Scale) -> String {
    let secs = scale.secs(8);
    let mut t = Table::new(
        "Fig 10: top-down cycle breakdown + IPC (Xeon)",
        &[
            "application",
            "service",
            "front-end",
            "bad spec",
            "back-end",
            "retiring",
            "IPC",
        ],
    );
    let social = social::social_network();
    for name in [
        "nginx",
        "text",
        "image",
        "uniqueID",
        "userTag",
        "urlShorten",
        "video",
        "recommender",
        "login",
        "readPost",
        "writeGraph",
        "memcached-posts",
        "mongodb-posts",
    ] {
        service_row(&mut t, &social, name);
    }
    end_to_end_row(&mut t, &social, 120.0, secs, 50);
    let mono = monolith::social_monolith();
    service_row(&mut t, &mono, "monolith");

    let ecom = ecommerce::ecommerce();
    for name in [
        "front-end",
        "login",
        "orders",
        "search",
        "cart",
        "wishlist",
        "catalogue",
        "recommender",
        "shipping",
        "payment",
        "invoicing",
        "queueMaster",
        "memcached-catalogue",
        "mongodb-catalogue",
    ] {
        service_row(&mut t, &ecom, name);
    }
    end_to_end_row(&mut t, &ecom, 120.0, secs, 51);
    let emono = monolith::ecommerce_monolith();
    service_row(&mut t, &emono, "monolith");
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsb_uarch::UarchProfile;

    #[test]
    fn frontend_stalls_significant_retiring_minority() {
        // Paper: a large fraction of cycles (often the majority) in the
        // front-end; only ~21-35% retiring.
        let social = social::social_network();
        let xeon = CoreModel::xeon();
        let mut frontend_sum = 0.0;
        let mut retiring_sum = 0.0;
        let mut n = 0.0;
        for s in &social.spec.services {
            let b = xeon.breakdown(&s.profile);
            frontend_sum += b.frontend;
            retiring_sum += b.retiring;
            n += 1.0;
        }
        assert!(
            frontend_sum / n > 0.15,
            "mean frontend {}",
            frontend_sum / n
        );
        assert!(retiring_sum / n < 0.5, "mean retiring {}", retiring_sum / n);
    }

    #[test]
    fn search_high_ipc_recommender_lowest() {
        let ecom = ecommerce::ecommerce();
        let xeon = CoreModel::xeon();
        let ipc = |name: &str| xeon.ipc(&ecom.spec.service(ecom.service(name)).profile);
        assert!(ipc("search") > ipc("front-end"));
        assert!(ipc("recommender") < ipc("front-end"));
        assert!(ipc("search") > 2.0 * ipc("recommender"));
    }

    #[test]
    fn monolith_breakdown_close_to_microservices_but_more_frontend() {
        // Paper: "the cycles breakdown is not drastically different for
        // monoliths", but they have more i-cache pressure.
        let xeon = CoreModel::xeon();
        let mono = xeon.breakdown(&UarchProfile::monolith());
        let micro = xeon.breakdown(&UarchProfile::microservice_default());
        assert!(mono.frontend > micro.frontend);
        assert!((mono.retiring - micro.retiring).abs() < 0.4);
    }
}
