//! Fig. 3 — network vs application processing for monolithic single-tier
//! services against the end-to-end Social Network.
//!
//! The paper: NGINX spends 5.3 % of execution time in network processing,
//! memcached 19.8 %, MongoDB 13.6 % — but the microservices-based Social
//! Network spends 36.3 %, shifting the system's resource bottlenecks.

use dsb_apps::{singles, social, BuiltApp};
use dsb_core::ServiceId;

use crate::harness::{build_sim, drive, make_cluster};
use crate::report::{ms, pct, Table};
use crate::Scale;

/// Network-processing share of total processing time across all services.
fn net_share(app: &BuiltApp, qps: f64, secs: u64, seed: u64) -> (f64, u64) {
    let (mut sim, mut load) = build_sim(app, make_cluster(8), seed);
    drive(&mut sim, &mut load, 0, secs, qps);
    sim.run_until_idle();
    let mut net = 0u128;
    let mut appt = 0u128;
    for i in 0..app.spec.service_count() {
        if let Some(s) = sim.collector().service(ServiceId(i as u32).0) {
            net += s.net_ns;
            appt += s.app_ns;
        }
    }
    let share = if net + appt == 0 {
        0.0
    } else {
        net as f64 / (net + appt) as f64
    };
    let lat = crate::harness::merged_latency(&sim, 1, secs).mean() as u64;
    (share, lat)
}

/// Regenerates Fig. 3.
pub fn run(scale: Scale) -> String {
    let secs = scale.secs(10);
    let mut t = Table::new(
        "Fig 3: time in network processing vs application processing",
        &["application", "network share", "paper", "mean latency (ms)"],
    );
    let cases: Vec<(&str, BuiltApp, f64, &str)> = vec![
        ("NGINX", singles::nginx(), 2000.0, "5.3%"),
        ("memcached", singles::memcached(), 4000.0, "19.8%"),
        ("MongoDB", singles::mongodb(), 1000.0, "13.6%"),
        ("Social Network", social::social_network(), 120.0, "36.3%"),
    ];
    for (i, (name, app, qps, paper)) in cases.into_iter().enumerate() {
        let (share, lat) = net_share(&app, qps, secs, 40 + i as u64);
        t.row_owned(vec![
            name.to_string(),
            pct(share),
            paper.to_string(),
            ms(lat),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn social_has_much_higher_network_share_than_single_tiers() {
        let secs = 4;
        let (nginx, _) = net_share(&singles::nginx(), 1000.0, secs, 1);
        let (social, _) = net_share(&social::social_network(), 60.0, secs, 1);
        assert!(
            social > 2.0 * nginx,
            "social {social} vs nginx {nginx}: microservices must shift \
             time into network processing"
        );
        assert!(social > 0.15, "social share {social}");
    }
}
