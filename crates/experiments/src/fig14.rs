//! Fig. 14 — cycles (C) and instructions (I) split across kernel ("OS"),
//! user, and library code for each end-to-end service.
//!
//! The shares fall out of the simulator's execution-domain accounting:
//! message (TCP/RPC) processing is charged to the kernel, de/serialization
//! to libraries, handler compute to user code. The paper's findings:
//! Social Network and Media are the most kernel-heavy (caching tiers +
//! high network traffic); E-commerce and Banking are more
//! computationally intensive and spend more time in user mode; Swarm
//! leans on libraries.

use dsb_apps::{banking, ecommerce, media, social, swarm, BuiltApp};
use dsb_core::ServiceId;
use dsb_uarch::ExecDomain;

use crate::harness::{build_sim, drive, make_cluster};
use crate::report::{pct, Table};
use crate::Scale;

/// Aggregated domain shares: `(cycles[os,user,libs], instr[os,user,libs])`.
pub fn shares(app: &BuiltApp, qps: f64, secs: u64, seed: u64) -> ([f64; 3], [f64; 3]) {
    let (mut sim, mut load) = build_sim(app, make_cluster(8), seed);
    drive(&mut sim, &mut load, 0, secs, qps);
    sim.run_until_idle();
    let mut cycles = [0.0f64; 4];
    let mut instr = [0.0f64; 4];
    for i in 0..app.spec.service_count() {
        let st = sim.service_stats(ServiceId(i as u32));
        for d in 0..4 {
            cycles[d] += st.cycles[d];
            instr[d] += st.instructions[d];
        }
    }
    let ct: f64 = cycles.iter().sum();
    let it: f64 = instr.iter().sum();
    let k = ExecDomain::Kernel.index();
    let u = ExecDomain::User.index();
    let l = ExecDomain::Libs.index();
    (
        [cycles[k] / ct, cycles[u] / ct, cycles[l] / ct],
        [instr[k] / it, instr[u] / it, instr[l] / it],
    )
}

/// Regenerates Fig. 14.
pub fn run(scale: Scale) -> String {
    let secs = scale.secs(8);
    let mut t = Table::new(
        "Fig 14: kernel/user/libs shares of cycles (C) and instructions (I)",
        &[
            "application",
            "C:OS",
            "C:User",
            "C:Libs",
            "I:OS",
            "I:User",
            "I:Libs",
        ],
    );
    let apps: Vec<(BuiltApp, f64)> = vec![
        (social::social_network(), 120.0),
        (media::media_service(), 120.0),
        (ecommerce::ecommerce(), 120.0),
        (banking::banking(), 120.0),
        (swarm::swarm(swarm::SwarmVariant::Cloud), 40.0),
        (swarm::swarm(swarm::SwarmVariant::Edge), 40.0),
    ];
    for (i, (app, qps)) in apps.into_iter().enumerate() {
        let (c, instr) = shares(&app, qps, secs, 60 + i as u64);
        t.row_owned(vec![
            app.spec.name.clone(),
            pct(c[0]),
            pct(c[1]),
            pct(c[2]),
            pct(instr[0]),
            pct(instr[1]),
            pct(instr[2]),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn social_more_kernel_heavy_than_banking() {
        let (social_c, _) = shares(&social::social_network(), 60.0, 4, 1);
        let (banking_c, _) = shares(&banking::banking(), 60.0, 4, 1);
        assert!(
            social_c[0] > banking_c[0],
            "social OS {} vs banking OS {}",
            social_c[0],
            banking_c[0]
        );
        // Banking compensates in user mode.
        assert!(banking_c[1] > social_c[1]);
    }

    #[test]
    fn kernel_share_is_large_for_social() {
        // Paper: "a large fraction of execution is at kernel mode".
        let (c, _) = shares(&social::social_network(), 60.0, 4, 2);
        assert!(c[0] > 0.2, "kernel share {}", c[0]);
    }
}
