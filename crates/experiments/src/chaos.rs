//! Chaos scenarios: drive a built-in app under an injected [`ChaosPlan`]
//! with the full telemetry plane attached, and grade the plane as a
//! detector against the plan's ground truth.
//!
//! Each scenario exercises one [`ChaosEvent`] kind end to end: the fault
//! fires at a quiesced boundary (identically under the serial and the
//! sharded engine — the chaos conformance suite byte-compares the full
//! rendering across worker counts), the request stream degrades, the
//! burn-rate alert fires, the root-cause engine attaches fault evidence,
//! and the detection scorer joins it all back against the plan. The
//! rendered recovery timeline is golden-tested per scenario.

use std::fmt::Write as _;

use dsb_apps::BuiltApp;
use dsb_core::{ChaosEvent, ChaosPlan, MachineId, RequestType, ServiceId, Simulation};
use dsb_simcore::{SimDuration, SimTime};
use dsb_telemetry::{names, report, BurnRule, DetectionScore, Labels, Scraper};

use crate::harness::{build_sim, make_cluster};

/// Scrape interval all scenarios run at: fine enough that a one-second
/// fault spans several windows of the recovery timeline.
pub const INTERVAL: SimDuration = SimDuration::from_millis(250);

/// Grace past a fault's end during which alerts still count as caused
/// by it: queues drain and caches refill after the injection clears.
pub const GRACE: SimDuration = SimDuration::from_millis(1500);

/// The built-in chaos scenarios, one per [`ChaosEvent`] kind.
pub const SCENARIOS: &[&str] = &[
    "machine-crash",
    "cache-loss",
    "partition",
    "nic-degrade",
    "edge-churn",
];

/// One scored chaos run.
#[derive(Debug)]
pub struct ChaosRun {
    /// The golden-tested recovery timeline: per-window fault state and
    /// request health, then ALERT / ROOT CAUSE / DETECTION lines.
    pub timeline: String,
    /// The full JSONL telemetry export of the run.
    pub jsonl: String,
    /// The detection scorecard.
    pub score: DetectionScore,
}

/// The machine hosting instance `shard` of `service` — chaos plans
/// target machines, and placement decides where shards land.
fn shard_machine(sim: &Simulation, service: ServiceId, shard: usize) -> MachineId {
    let insts = sim.instances_of(service);
    sim.instance_machine(insts[shard])
}

struct Scenario {
    app: BuiltApp,
    qps: f64,
    secs: u64,
    plan: ChaosPlan,
}

/// Builds the named scenario against its placed simulation. Plans are a
/// pure function of `(name, placement)`, so every worker count sees the
/// same faults.
fn scenario(name: &str) -> Scenario {
    let ms = SimTime::from_millis;
    let dms = SimDuration::from_millis;
    match name {
        // The two-tier app's single memcached machine crashes outright:
        // every read fails fast until the restart, then the tier serves
        // again. The starkest recovery timeline of the suite.
        "machine-crash" => {
            let app = dsb_apps::twotier::twotier(64, 8);
            let mc = app.service("memcached");
            let sim = Simulation::new(app.spec.clone(), make_cluster(8), 7);
            let machine = shard_machine(&sim, mc, 0);
            let plan = ChaosPlan {
                seed: 7,
                events: vec![ChaosEvent::MachineCrash {
                    machine,
                    at: ms(2000),
                    restart_after: dms(1000),
                    cold_for: dms(500),
                }],
            };
            Scenario {
                app,
                qps: 2000.0,
                secs: 8,
                plan,
            }
        }
        // The DSB017 defect demo, proven dynamically: the analyzer warns
        // that `bare_cache`'s sole cache shard has no replica, and this
        // scenario is the incident it predicts — the shard dies, every
        // lookup fails fast (a replicated tier would fail over), and the
        // cold restart refills the whole key space against MongoDB. The
        // culprit verdict must name the cache tier.
        "cache-loss" => {
            let app = dsb_apps::defects::bare_cache();
            let mc = app.service("memcached-catalog");
            let plan = ChaosPlan {
                seed: 11,
                events: vec![ChaosEvent::CacheLoss {
                    service: mc,
                    shard: 0,
                    at: ms(2000),
                    restart_after: dms(1000),
                    cold_for: dms(1000),
                }],
            };
            Scenario {
                app,
                qps: 1500.0,
                secs: 8,
                plan,
            }
        }
        // The network between nginx's machine and memcached's machine is
        // cut: calls cross the cut, time out sender-side, and fail back.
        "partition" => {
            let app = dsb_apps::twotier::twotier(64, 8);
            let (nginx, mc) = (app.service("nginx"), app.service("memcached"));
            let sim = Simulation::new(app.spec.clone(), make_cluster(8), 7);
            let (a, b) = (shard_machine(&sim, nginx, 0), shard_machine(&sim, mc, 0));
            assert_ne!(a, b, "partition scenario needs the tiers apart");
            let plan = ChaosPlan {
                seed: 13,
                events: vec![ChaosEvent::Partition {
                    a: vec![a],
                    b: vec![b],
                    from: ms(2000),
                    until: ms(3500),
                    timeout: dms(10),
                }],
            };
            Scenario {
                app,
                qps: 2000.0,
                secs: 8,
                plan,
            }
        }
        // Memcached's NIC degrades 400x: nothing fails, but every
        // nginx -> memcached hop inflates past the 2 ms objective.
        "nic-degrade" => {
            let app = dsb_apps::twotier::twotier(64, 8);
            let mc = app.service("memcached");
            let sim = Simulation::new(app.spec.clone(), make_cluster(8), 7);
            let machine = shard_machine(&sim, mc, 0);
            let plan = ChaosPlan {
                seed: 17,
                events: vec![ChaosEvent::NicDegrade {
                    machines: vec![machine],
                    factor: 400.0,
                    from: ms(2000),
                    until: ms(4000),
                }],
            };
            Scenario {
                app,
                qps: 2000.0,
                secs: 8,
                plan,
            }
        }
        // Seeded churn over the swarm's drones: every 500 ms within the
        // window one drone crashes and rejoins 400 ms later — WAN edge
        // nodes flapping while the cloud tier stays up.
        "edge-churn" => {
            let app = dsb_apps::swarm::swarm(dsb_apps::swarm::SwarmVariant::Edge);
            // The location sensor anchors placement: instance k of every
            // drone-local service lives on drone k's machine, so its
            // machines ARE the drones.
            let drone = app.service("sensor-location");
            let sim = Simulation::new(app.spec.clone(), make_cluster(8), 7);
            let machines: Vec<MachineId> = sim
                .instances_of(drone)
                .iter()
                .map(|&i| sim.instance_machine(i))
                .collect();
            let plan = ChaosPlan {
                seed: 23,
                events: vec![ChaosEvent::EdgeChurn {
                    machines,
                    from: ms(2000),
                    until: ms(4500),
                    period: dms(500),
                    down_for: dms(400),
                    cold_for: dms(100),
                }],
            };
            Scenario {
                app,
                qps: 60.0,
                secs: 8,
                plan,
            }
        }
        other => panic!("unknown chaos scenario `{other}`; see chaos::SCENARIOS"),
    }
}

/// Runs the named scenario on `workers` shards and renders it. The
/// output is byte-identical for every worker count — pinned by the
/// chaos conformance suite.
pub fn run_scenario(name: &str, workers: usize) -> ChaosRun {
    run_scenario_for(name, workers, None)
}

/// [`run_scenario`] with the drive window overridden. The conformance
/// suite trims to the shortest window covering inject → restart → warm
/// (4 s): sharded wall time scales with simulated seconds (epoch
/// barriers), and byte-identity needs the fault path exercised, not the
/// quiet tail.
pub fn run_scenario_for(name: &str, workers: usize, secs: Option<u64>) -> ChaosRun {
    let mut sc = scenario(name);
    if let Some(s) = secs {
        sc.secs = s;
    }
    let mut cluster = make_cluster(8);
    cluster.trace_sample_prob = 0.05;
    let (mut sim, mut load) = build_sim(&sc.app, cluster, 7);
    sim.set_workers(workers);
    sim.install_chaos(&sc.plan);
    let mut scraper = Scraper::new(INTERVAL);
    for slo in sc.app.slos() {
        scraper = scraper.with_slo(slo);
    }
    // Drive in scrape-interval slices so fault state is sampled at the
    // cadence the timeline is rendered at.
    let slices = (sc.secs as f64 * 1000.0 / INTERVAL.as_millis_f64()) as u64;
    for k in 0..slices {
        let a = SimTime::ZERO + INTERVAL * k;
        let b = SimTime::ZERO + INTERVAL * (k + 1);
        load.drive_fn(&mut sim, a, b, |_| sc.qps);
        sim.advance_to(b);
        scraper.tick(&sim, b);
    }
    sim.run_until_idle();
    scraper.flush(&sim);

    let (alerts, causes) = report::analyze(&sim, &scraper, &BurnRule::default());
    let plan = sim.chaos_plan().expect("plan installed").clone();
    let score = dsb_telemetry::score(&plan, INTERVAL, &alerts, &causes, GRACE);
    let mut timeline = render_timeline(&sim, &scraper, name);
    timeline.push_str(&report::alert_lines(&sim, &alerts, &causes));
    timeline.push_str(&report::detection_lines(&sim, &score));
    ChaosRun {
        timeline,
        jsonl: report::jsonl(&sim, &scraper, &alerts, &causes),
        score,
    }
}

/// Renders the per-window recovery timeline: request health on the left,
/// fault-plane series on the right.
fn render_timeline(sim: &Simulation, scraper: &Scraper, title: &str) -> String {
    let reg = scraper.registry();
    let n = scraper.scrapes();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "chaos timeline — {title} ({n} windows x {:.0} ms)",
        INTERVAL.as_millis_f64()
    );
    let _ = writeln!(
        out,
        "{:>4}{:>9}{:>9}{:>7}{:>7}{:>7}{:>8}",
        "W", "ISSUED", "COMPL", "FAIL", "DOWN", "CUT", "REFILL"
    );
    for w in 0..n {
        let (mut issued, mut compl, mut fail) = (0u64, 0u64, 0u64);
        for r in 0..sim.request_type_count() {
            let lr = Labels::rtype(r as u32);
            issued += reg.window_sum(names::ISSUED, &lr, w);
            compl += reg.window_sum(names::COMPLETED, &lr, w);
            fail += reg.window_sum(names::FAILED, &lr, w);
        }
        let mut refill = 0u64;
        for s in 0..sim.app().service_count() {
            refill += reg.window_sum(names::REFILL_MISSES, &Labels::service(s as u32), w);
        }
        let l = Labels::default();
        let down = reg.window_mean(names::INSTANCES_DOWN, &l, w).round() as u64;
        let cut = reg.window_mean(names::PARTITION_EDGES, &l, w).round() as u64;
        let _ = writeln!(
            out,
            "{w:>4}{issued:>9}{compl:>9}{fail:>7}{down:>7}{cut:>7}{refill:>8}"
        );
    }
    out
}

/// The Fig. 22-style tail-under-failure experiment: the same app and
/// load, once healthy and once under the scenario's chaos plan, p99 per
/// one-second window side by side. Failures fail *fast*, so the chaos
/// column shows the tail of what still completed — the paper's point
/// that fault handling shifts latency rather than simply truncating it.
pub fn tail_under_failure(name: &str) -> String {
    let sc = scenario(name);
    let run = |chaos: bool| {
        let (mut sim, mut load) = build_sim(&sc.app, make_cluster(8), 7);
        if chaos {
            sim.install_chaos(&sc.plan);
        }
        for s in 0..sc.secs {
            let a = SimTime::from_secs(s);
            let b = SimTime::from_secs(s + 1);
            load.drive_fn(&mut sim, a, b, |_| sc.qps);
            sim.advance_to(b);
        }
        sim.run_until_idle();
        sim
    };
    let healthy = run(false);
    let faulted = run(true);
    let p99 = |sim: &Simulation, w: usize| -> f64 {
        let mut worst = 0u64;
        for r in 0..sim.request_type_count() {
            if let Some(rs) = sim.request_stats(RequestType(r as u32)) {
                worst = worst.max(rs.windows.quantile(w, 0.99));
            }
        }
        worst as f64 / 1e6
    };
    let failed_total = |sim: &Simulation| -> u64 {
        (0..sim.request_type_count())
            .filter_map(|r| sim.request_stats(RequestType(r as u32)))
            .map(|rs| rs.failed)
            .sum()
    };
    let mut out = String::new();
    let _ = writeln!(out, "tail under failure — {name} @ {:.0} qps", sc.qps);
    let _ = writeln!(
        out,
        "{:>4}{:>16}{:>16}",
        "SEC", "HEALTHY p99 ms", "CHAOS p99 ms"
    );
    for w in 0..sc.secs as usize {
        let _ = writeln!(
            out,
            "{w:>4}{:>16.3}{:>16.3}",
            p99(&healthy, w),
            p99(&faulted, w),
        );
    }
    let _ = writeln!(
        out,
        "failed fast under chaos: {} of {} issued (healthy run: {})",
        failed_total(&faulted),
        (0..faulted.request_type_count())
            .filter_map(|r| faulted.request_stats(RequestType(r as u32)))
            .map(|rs| rs.issued)
            .sum::<u64>(),
        failed_total(&healthy),
    );
    out
}
