//! §7 in-text results (RPC vs REST, critical-path shift) and ablations.
fn main() {
    let scale = dsb_experiments::Scale::from_env();
    print!("{}", dsb_experiments::extras::run(scale));
}
