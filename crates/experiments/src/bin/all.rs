//! Runs every table/figure reproduction in order.
type Job = fn(dsb_experiments::Scale) -> String;

fn main() {
    let scale = dsb_experiments::Scale::from_env();
    let jobs: Vec<(&str, Job)> = vec![
        ("table01", dsb_experiments::table01::run),
        ("fig03", dsb_experiments::fig03::run),
        ("fig09", dsb_experiments::fig09::run),
        ("fig10", dsb_experiments::fig10::run),
        ("fig11", dsb_experiments::fig11::run),
        ("fig12", dsb_experiments::fig12::run),
        ("fig13", dsb_experiments::fig13::run),
        ("fig14", dsb_experiments::fig14::run),
        ("fig15", dsb_experiments::fig15::run),
        ("fig16", dsb_experiments::fig16::run),
        ("fig17", dsb_experiments::fig17::run),
        ("fig18", dsb_experiments::fig18::run),
        ("fig19", dsb_experiments::fig19::run),
        ("fig20", dsb_experiments::fig20::run),
        ("fig21", dsb_experiments::fig21::run),
        ("fig22", dsb_experiments::fig22::run),
        ("extras", dsb_experiments::extras::run),
    ];
    for (name, f) in jobs {
        let t0 = std::time::Instant::now();
        println!("##### {name} #####");
        print!("{}", f(scale));
        println!("({name} took {:.1}s)\n", t0.elapsed().as_secs_f64());
    }
}
