//! `dsb-chaos`: runs a built-in chaos scenario and prints its recovery
//! timeline, detection scorecard, and (optionally) the telemetry JSONL.
//!
//! ```text
//! dsb-chaos [SCENARIO|all] [--jsonl] [--tail] [--workers N]
//! ```
//!
//! `SCENARIO` is one of [`dsb_experiments::chaos::SCENARIOS`] (default
//! `all`). `--tail` runs the Fig. 22-style tail-under-failure comparison
//! instead of the scored timeline. Output is deterministic and
//! byte-identical for every `--workers` count.

use std::process::ExitCode;

use dsb_experiments::chaos;

fn main() -> ExitCode {
    let mut which = String::from("all");
    let (mut jsonl, mut tail) = (false, false);
    let mut workers = 1usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--jsonl" => jsonl = true,
            "--tail" => tail = true,
            "--workers" => workers = args.next().and_then(|v| v.parse().ok()).unwrap_or(workers),
            "--help" | "-h" => {
                println!(
                    "usage: dsb-chaos [SCENARIO|all] [--jsonl] [--tail] [--workers N]\n\
                     scenarios: {}",
                    chaos::SCENARIOS.join(", ")
                );
                return ExitCode::SUCCESS;
            }
            name => which = name.to_string(),
        }
    }

    let names: Vec<&str> = if which == "all" {
        chaos::SCENARIOS.to_vec()
    } else if let Some(n) = chaos::SCENARIOS.iter().find(|n| **n == which) {
        vec![n]
    } else {
        eprintln!(
            "unknown scenario `{which}`; pick one of: all, {}",
            chaos::SCENARIOS.join(", ")
        );
        return ExitCode::FAILURE;
    };

    for name in names {
        if tail {
            print!("{}", chaos::tail_under_failure(name));
            continue;
        }
        let run = chaos::run_scenario(name, workers);
        print!("{}", run.timeline);
        if jsonl {
            print!("{}", run.jsonl);
        }
        println!();
    }
    ExitCode::SUCCESS
}
