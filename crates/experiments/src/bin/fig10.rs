//! Regenerates the paper's fig10 output. Pass --quick for a scaled-down run.
fn main() {
    let scale = dsb_experiments::Scale::from_env();
    print!("{}", dsb_experiments::fig10::run(scale));
}
