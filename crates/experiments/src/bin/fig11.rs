//! Regenerates the paper's fig11 output. Pass --quick for a scaled-down run.
fn main() {
    let scale = dsb_experiments::Scale::from_env();
    print!("{}", dsb_experiments::fig11::run(scale));
}
