//! Regenerates the paper's fig12 output. Pass --quick for a scaled-down run.
fn main() {
    let scale = dsb_experiments::Scale::from_env();
    print!("{}", dsb_experiments::fig12::run(scale));
}
