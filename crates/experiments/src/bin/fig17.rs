//! Regenerates the paper's fig17 output. Pass --quick for a scaled-down run.
fn main() {
    let scale = dsb_experiments::Scale::from_env();
    print!("{}", dsb_experiments::fig17::run(scale));
}
