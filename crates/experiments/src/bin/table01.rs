//! Regenerates the paper's table01 output. Pass --quick for a scaled-down run.
fn main() {
    let scale = dsb_experiments::Scale::from_env();
    print!("{}", dsb_experiments::table01::run(scale));
}
