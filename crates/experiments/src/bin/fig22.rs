//! Regenerates the paper's fig22 output. Pass --quick for a scaled-down run.
fn main() {
    let scale = dsb_experiments::Scale::from_env();
    print!("{}", dsb_experiments::fig22::run(scale));
}
