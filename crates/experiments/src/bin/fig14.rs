//! Regenerates the paper's fig14 output. Pass --quick for a scaled-down run.
fn main() {
    let scale = dsb_experiments::Scale::from_env();
    print!("{}", dsb_experiments::fig14::run(scale));
}
