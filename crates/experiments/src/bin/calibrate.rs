//! Scratch calibration: p99 vs load for each app, at several frequencies.
use dsb_apps::*;
use dsb_experiments::harness::*;

fn main() {
    let apps: Vec<(&str, BuiltApp)> = vec![
        ("social", social::social_network()),
        ("media", media::media_service()),
        ("ecommerce", ecommerce::ecommerce()),
        ("banking", banking::banking()),
        ("swarm-cloud", swarm::swarm(swarm::SwarmVariant::Cloud)),
        ("swarm-edge", swarm::swarm(swarm::SwarmVariant::Edge)),
        ("mono-social", monolith::social_monolith()),
        ("nginx", singles::nginx()),
        ("memcached", singles::memcached()),
        ("mongodb", singles::mongodb()),
        ("xapian", singles::xapian()),
        ("recommender", singles::recommender()),
        ("twotier", twotier::twotier(64, 1024)),
    ];
    let cluster = make_cluster(8);
    for (name, app) in &apps {
        print!("{name:12}");
        for qps in [25.0, 100.0, 400.0, 1600.0, 6400.0, 25600.0] {
            let p = probe(app, &cluster, &|_| {}, qps, 6, 2, 42);
            print!(
                "  {:>7.0}q:{:>9.2}ms/{:>4.2}c",
                qps,
                p.p99.as_millis_f64(),
                p.completion
            );
        }
        println!();
    }
    // frequency sensitivity of social at fixed 200 qps
    for f in [2.4, 1.8, 1.2, 1.0] {
        let app = social::social_network();
        let p = probe(
            &app,
            &cluster,
            &move |s| s.set_all_frequencies(f),
            200.0,
            6,
            2,
            42,
        );
        println!(
            "social @{f}GHz 200qps: p99 {:.2}ms completion {:.2}",
            p.p99.as_millis_f64(),
            p.completion
        );
    }
}
