//! `dsb-report`: renders an observability report for a built-in app.
//!
//! ```text
//! dsb-report [APP] [--jsonl|--top] [--qps N] [--secs N] [--seed N]
//!            [--fail-on-alert]
//! ```
//!
//! `APP` is a fixture name from `dsb_apps::all_builtin()` (default
//! `social_network`), or `backpressure` for the Fig. 17 case-B demo.
//! With no format flag both renderings print, `dsb-top` table first.
//! Output is deterministic in `(app, qps, secs, seed)`. With
//! `--fail-on-alert` the process exits non-zero when any SLO burn-rate
//! alert fired — the CI-friendly "did this run stay healthy" check.

use std::process::ExitCode;

use dsb_experiments::observe;

fn main() -> ExitCode {
    let mut app_name = String::from("social_network");
    let (mut jsonl, mut top) = (true, true);
    let (mut qps, mut secs, mut seed) = (None::<f64>, 10u64, 7u64);
    let mut fail_on_alert = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--jsonl" => top = false,
            "--top" => jsonl = false,
            "--fail-on-alert" => fail_on_alert = true,
            "--qps" => qps = args.next().and_then(|v| v.parse().ok()),
            "--secs" => secs = args.next().and_then(|v| v.parse().ok()).unwrap_or(secs),
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).unwrap_or(seed),
            "--help" | "-h" => {
                println!(
                    "usage: dsb-report [APP|backpressure] [--jsonl|--top] \
                     [--qps N] [--secs N] [--seed N] [--fail-on-alert]"
                );
                return ExitCode::SUCCESS;
            }
            name => app_name = name.to_string(),
        }
    }

    let obs = if app_name == "backpressure" {
        observe::backpressure_demo(secs, seed)
    } else {
        let Some((name, fixture_qps, app)) = dsb_apps::all_builtin()
            .into_iter()
            .find(|(n, _, _)| *n == app_name)
        else {
            eprintln!(
                "unknown app `{app_name}`; pick one of: backpressure, {}",
                dsb_apps::all_builtin()
                    .iter()
                    .map(|(n, _, _)| *n)
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            return ExitCode::FAILURE;
        };
        let qps = qps.unwrap_or(fixture_qps);
        let title = format!("{name} @ {qps} qps");
        observe::observe(&app, &title, qps, secs, seed)
    };
    if top {
        print!("{}", obs.top);
    }
    if jsonl {
        print!("{}", obs.jsonl);
    }
    ExitCode::from(observe::exit_code(&obs, fail_on_alert))
}
