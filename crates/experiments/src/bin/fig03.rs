//! Regenerates the paper's fig03 output. Pass --quick for a scaled-down run.
fn main() {
    let scale = dsb_experiments::Scale::from_env();
    print!("{}", dsb_experiments::fig03::run(scale));
}
