//! Text-table and heatmap rendering for experiment output.

use std::fmt::Write as _;

/// An aligned text table with a title and column headers.
///
/// # Example
///
/// ```
/// use dsb_experiments::report::Table;
///
/// let mut t = Table::new("demo", &["service", "p99 (ms)"]);
/// t.row(&["nginx", "1.25"]);
/// t.row(&["memcached", "0.19"]);
/// let s = t.render();
/// assert!(s.contains("nginx"));
/// assert!(s.contains("p99 (ms)"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: &[&str]) -> &mut Table {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Adds a row of owned strings.
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Table {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::new();
            for i in 0..ncols {
                let pad = widths[i];
                let cell = &cells[i];
                if i == 0 {
                    let _ = write!(s, "{cell:<pad$}");
                } else {
                    let _ = write!(s, "  {cell:>pad$}");
                }
            }
            s
        };
        let header = line(&self.headers, &widths);
        out.push_str(&header);
        out.push('\n');
        let _ = writeln!(out, "{}", "-".repeat(header.len()));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats nanoseconds as milliseconds with 2 decimals.
pub fn ms(ns: u64) -> String {
    format!("{:.2}", ns as f64 / 1e6)
}

/// Formats a fraction as a percentage with 1 decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Renders a heatmap of `values[row][col]` as shade characters plus a
/// legend; `levels` maps a value to an intensity in `[0, 1]`.
pub fn heatmap(
    title: &str,
    row_labels: &[String],
    values: &[Vec<f64>],
    levels: impl Fn(f64) -> f64,
) -> String {
    const SHADES: [char; 6] = [' ', '.', ':', '*', '#', '@'];
    let mut out = format!("== {title} ==\n");
    let w = row_labels.iter().map(|l| l.len()).max().unwrap_or(0);
    for (label, row) in row_labels.iter().zip(values) {
        let cells: String = row
            .iter()
            .map(|&v| {
                let lvl = levels(v).clamp(0.0, 1.0);
                SHADES[((lvl * (SHADES.len() - 1) as f64).round() as usize).min(SHADES.len() - 1)]
            })
            .collect();
        let _ = writeln!(out, "{label:>w$} |{cells}|");
    }
    let _ = writeln!(
        out,
        "{:>w$}  (shade: ' ' low '@' high; columns = time/windows)",
        ""
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new("x", &["a", "bbbb"]);
        t.row(&["longer", "1"]);
        t.row(&["s", "22"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert!(lines[1].starts_with("a     "));
        assert!(r.contains("== x =="));
        // all data lines same length
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        Table::new("x", &["a", "b"]).row(&["only-one"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.004), "1.00");
        assert_eq!(f1(2.34), "2.3");
        assert_eq!(ms(1_500_000), "1.50");
        assert_eq!(pct(0.363), "36.3%");
    }

    #[test]
    fn heatmap_renders_rows() {
        let hm = heatmap(
            "h",
            &["a".into(), "bb".into()],
            &[vec![0.0, 1.0], vec![0.5, 0.5]],
            |v| v,
        );
        assert!(hm.contains(" a | @|"));
        assert!(hm.contains("bb |"));
    }
}
