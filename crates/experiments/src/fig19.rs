//! Fig. 19 — cascading QoS violations in Social Network.
//!
//! A back-end tier (the posts MongoDB) is saturated mid-run by direct
//! poison load; its latency spike propagates to every upstream service all
//! the way to the front-end, while CPU (worker) utilization *misleads*: the
//! saturated back-end is busy, but blocked mid-tier services show high
//! occupancy without being the culprit, and some degraded services show
//! low utilization.

use dsb_apps::social;
use dsb_core::{EndpointRef, RequestType, ServiceId};
use dsb_simcore::SimTime;

use crate::harness::{build_sim, drive_ticked, make_cluster};
use crate::report::heatmap;
use crate::Scale;

/// The services shown as heatmap rows (back-end at the top, front-end at
/// the bottom, like the paper).
const ROWS: [&str; 10] = [
    "mongodb-posts",
    "memcached-posts",
    "postsStorage",
    "writeHomeTimeline",
    "readPost",
    "readTimeline",
    "composePost",
    "userInfo",
    "php-fpm",
    "nginx",
];

/// Output of the cascade run: per-service per-window latency increase over
/// its pre-fault baseline, plus occupancy samples.
pub struct Cascade {
    /// Service names (row order).
    pub names: Vec<String>,
    /// `latency_increase[row][window]`, as a multiple of baseline mean.
    pub latency_increase: Vec<Vec<f64>>,
    /// `occupancy[row][window]`, each value in the unit interval.
    pub occupancy: Vec<Vec<f64>>,
}

/// Runs the cascade experiment: fault injected during the middle third.
pub fn cascade(scale: Scale, seed: u64) -> Cascade {
    let secs = scale.secs(90);
    let fault_from = secs / 3;
    let fault_to = 2 * secs / 3;
    let app = social::social_network();
    let (mut sim, mut load) = build_sim(&app, make_cluster(10), seed);
    let ids: Vec<ServiceId> = ROWS.iter().map(|n| app.service(n)).collect();
    let mongo_find = EndpointRef {
        service: app.service("mongodb-posts"),
        endpoint: 0,
    };
    let mut occ: Vec<Vec<f64>> = vec![Vec::new(); ids.len()];
    {
        let occ = &mut occ;
        let ids = &ids;
        drive_ticked(&mut sim, &mut load, 0, secs, |_| 250.0, &mut |sim, s| {
            // Poison the back-end during the fault window.
            if s + 1 >= fault_from && s + 1 < fault_to {
                let t0 = SimTime::from_secs(s + 1);
                // ~35k poison finds/s, above the posts-DB capacity.
                for k in 0..35_000u64 {
                    sim.inject(
                        t0 + dsb_simcore::SimDuration::from_nanos(k * 28_571),
                        mongo_find,
                        RequestType(15),
                        256,
                        k,
                    );
                }
            }
            for (row, &svc) in ids.iter().enumerate() {
                occ[row].push(sim.occupancy(svc));
            }
        });
    }
    // Latency increase per service per window vs its pre-fault mean.
    let mut latency_increase = Vec::new();
    for &svc in &ids {
        let stats = sim.collector().service(svc.0).expect("service saw spans");
        let mut base = 0.0;
        let mut base_n = 0.0f64;
        for w in 1..fault_from as usize {
            let m = stats.latency_windows.mean(w);
            if m > 0.0 {
                base += m;
                base_n += 1.0;
            }
        }
        let base = (base / base_n.max(1.0)).max(1.0);
        let series: Vec<f64> = (0..secs as usize)
            .map(|w| {
                let m = stats.latency_windows.mean(w);
                if m == 0.0 {
                    1.0
                } else {
                    m / base
                }
            })
            .collect();
        latency_increase.push(series);
    }
    Cascade {
        names: ROWS.iter().map(|s| s.to_string()).collect(),
        latency_increase,
        occupancy: occ,
    }
}

/// Regenerates Fig. 19.
pub fn run(scale: Scale) -> String {
    let c = cascade(scale, 130);
    let lat = heatmap(
        "Fig 19a: per-service latency increase over baseline (rows: back-end top -> front-end bottom)",
        &c.names,
        &c.latency_increase,
        |v| (v.log10() / 2.0).clamp(0.0, 1.0), // 1x..100x
    );
    let occ = heatmap(
        "Fig 19b: per-service worker occupancy (can mislead: blocked != culprit)",
        &c.names,
        &c.occupancy,
        |v| v,
    );
    format!("{lat}\n{occ}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hotspot_propagates_from_backend_to_frontend() {
        let c = cascade(Scale::Quick, 1);
        let secs = c.latency_increase[0].len();
        let mid = secs / 2; // inside the fault window
        let mongo = &c.latency_increase[0];
        let nginx = &c.latency_increase[c.names.len() - 1];
        assert!(
            mongo[mid] > 3.0,
            "backend latency must spike (got {}x)",
            mongo[mid]
        );
        assert!(
            nginx[mid] > 1.5,
            "front-end must degrade too (got {}x)",
            nginx[mid]
        );
        // Before the fault both are nominal.
        assert!(mongo[2] < 2.0, "pre-fault backend {}x", mongo[2]);
        assert!(nginx[2] < 2.0, "pre-fault frontend {}x", nginx[2]);
    }
}
