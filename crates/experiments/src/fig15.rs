//! Fig. 15 — application vs network (TCP/RPC) processing time, at low and
//! high load.
//!
//! (a) per-microservice split for Social Network; (b) network-processing
//! share of each end-to-end service. The paper: 5–75 % of per-service
//! execution goes to RPC processing at low load; at high load NIC queues
//! build and the Social Network's end-to-end tail inflates ~3.2×.

use dsb_apps::{banking, ecommerce, media, social, swarm, BuiltApp};
use dsb_core::{ServiceId, Simulation};
use dsb_simcore::SimDuration;

use crate::harness::{build_sim, drive, make_cluster, max_qps_under_qos, merged_p99, shrink};
use crate::report::{f2, pct, Table};
use crate::Scale;

/// Low/high load points for an app: 15 % and 95 % of its measured max QPS
/// under QoS (the app is shrunk 4x to keep the search and the high-load
/// run affordable).
fn load_points(app: &BuiltApp, scale: Scale, seed: u64) -> (BuiltApp, f64, f64) {
    let shrunk = shrink(app, 4);
    let secs = scale.secs(6);
    let g = max_qps_under_qos(
        &shrunk,
        &make_cluster(8),
        &|_| {},
        shrunk.qos_p99,
        secs,
        seed,
    )
    .max(20.0);
    // "High load" sits just past the saturation knee, where NIC and worker
    // queues start building — the regime the paper's Fig. 15 calls high.
    (shrunk, 0.15 * g, 1.1 * g)
}

fn run_at(app: &BuiltApp, qps: f64, secs: u64, seed: u64) -> (Simulation, SimDuration) {
    let (mut sim, mut load) = build_sim(app, make_cluster(8), seed);
    drive(&mut sim, &mut load, 0, secs, qps);
    let p99 = merged_p99(&sim, secs / 3, secs);
    (sim, p99)
}

fn app_net_fraction(sim: &Simulation, app: &BuiltApp) -> f64 {
    let mut net = 0u128;
    let mut appt = 0u128;
    for i in 0..app.spec.service_count() {
        if let Some(s) = sim.collector().service(ServiceId(i as u32).0) {
            net += s.net_ns;
            appt += s.app_ns;
        }
    }
    if net + appt == 0 {
        0.0
    } else {
        net as f64 / (net + appt) as f64
    }
}

/// Regenerates Fig. 15.
pub fn run(scale: Scale) -> String {
    let secs = scale.secs(10);
    // (a) Social Network per-service split at low and high load.
    let (app, lo_q, hi_q) = load_points(&social::social_network(), scale, 70);
    let (low, _) = run_at(&app, lo_q, secs, 70);
    let (high, _) = run_at(&app, hi_q, secs, 70);
    let mut ta = Table::new(
        "Fig 15a: Social Network — mean per-invocation app vs TCP time (us)",
        &[
            "service",
            "app (low)",
            "net (low)",
            "net share (low)",
            "net share (high)",
        ],
    );
    for name in [
        "nginx",
        "text",
        "image",
        "uniqueID",
        "userTag",
        "urlShorten",
        "video",
        "recommender",
        "login",
        "readPost",
        "writeGraph",
        "memcached-posts",
        "mongodb-posts",
    ] {
        let id = app.service(name);
        let (Some(lo), Some(hi)) = (
            low.collector().service(id.0),
            high.collector().service(id.0),
        ) else {
            continue;
        };
        let app_us = lo.app_ns as f64 / lo.spans as f64 / 1e3;
        let net_us = lo.net_ns as f64 / lo.spans as f64 / 1e3;
        ta.row_owned(vec![
            name.to_string(),
            f2(app_us),
            f2(net_us),
            pct(lo.net_fraction()),
            pct(hi.net_fraction()),
        ]);
    }

    // (b) end-to-end network share + tail inflation for every service.
    let mut tb = Table::new(
        "Fig 15b: network processing share of execution (low vs high load) and tail inflation",
        &[
            "application",
            "net share (low)",
            "net share (high)",
            "p99 low (ms)",
            "p99 high (ms)",
            "inflation",
        ],
    );
    let cases: Vec<BuiltApp> = vec![
        social::social_network(),
        media::media_service(),
        ecommerce::ecommerce(),
        banking::banking(),
        swarm::swarm(swarm::SwarmVariant::Cloud),
        swarm::swarm(swarm::SwarmVariant::Edge),
    ];
    for (i, full) in cases.into_iter().enumerate() {
        let (app, lo_qps, hi_qps) = load_points(&full, scale, 71 + i as u64);
        let (lo_sim, lo_p99) = run_at(&app, lo_qps, secs, 71 + i as u64);
        let (hi_sim, hi_p99) = run_at(&app, hi_qps, secs, 71 + i as u64);
        let infl = hi_p99.as_nanos() as f64 / lo_p99.as_nanos().max(1) as f64;
        tb.row_owned(vec![
            app.spec.name.clone(),
            pct(app_net_fraction(&lo_sim, &app)),
            pct(app_net_fraction(&hi_sim, &app)),
            f2(lo_p99.as_millis_f64()),
            f2(hi_p99.as_millis_f64()),
            format!("{infl:.1}x"),
        ]);
    }
    format!("{}\n{}", ta.render(), tb.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn network_share_rises_with_load_and_tail_inflates() {
        let (app, lo_q, hi_q) = load_points(&social::social_network(), Scale::Quick, 1);
        let (lo_sim, lo_p99) = run_at(&app, lo_q, 6, 1);
        let (hi_sim, hi_p99) = run_at(&app, hi_q, 6, 1);
        let lo = app_net_fraction(&lo_sim, &app);
        let hi = app_net_fraction(&hi_sim, &app);
        assert!(lo > 0.05, "low-load net share {lo}");
        assert!(hi_p99 > lo_p99, "tail must inflate under load");
        // The paper reports a 3.2x end-to-end tail inflation; require a
        // clearly-visible inflation here.
        let infl = hi_p99.as_nanos() as f64 / lo_p99.as_nanos() as f64;
        assert!(infl > 1.5, "inflation {infl}");
        let _ = hi;
    }

    #[test]
    fn simple_services_have_high_net_share() {
        // Very small handlers (uniqueID) spend most time in messaging.
        let app = social::social_network();
        let (sim, _) = run_at(&app, 60.0, 5, 2);
        let unique = sim
            .collector()
            .service(app.service("uniqueID").0)
            .expect("uniqueID ran");
        assert!(
            unique.net_fraction() > 0.3,
            "uniqueID net fraction {}",
            unique.net_fraction()
        );
    }
}
