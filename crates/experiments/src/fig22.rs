//! Fig. 22 — tail-at-scale effects in the large Social Network deployment.
//!
//! (a) A switch misconfiguration routes all composePost/readPost traffic
//! to a single instance of each; the hotspot cascades through the middle
//! tiers, and rate limiting is needed to let the system recover.
//! (b) Request skew: goodput collapses as fewer users generate most of the
//! traffic (skew = 100 − u, u = % of users issuing 90 % of requests).
//! (c) Slow servers: a small fraction of slow machines degrades goodput
//! dramatically for microservices as clusters grow, while monolith
//! instances are largely independent.

use dsb_apps::{monolith, social, BuiltApp};
use dsb_cluster::slow_down_machines;
use dsb_core::ServiceId;
use dsb_simcore::{Rng, SimDuration, SimTime};
use dsb_telemetry::{names, Labels, Scraper};
use dsb_workload::UserPopulation;

use crate::harness::{build_sim_with_users, drive_ticked, make_cluster};
use crate::report::{heatmap, Table};
use crate::Scale;

/// Regenerates Fig. 22a: the misrouting cascade + rate-limit recovery.
pub fn run_a(scale: Scale) -> String {
    let secs = scale.secs(90);
    let fault_at = secs / 3;
    let limit_at = 2 * secs / 3;
    let app = crate::harness::shrink(&social::social_network(), 8);
    let rows: Vec<&str> = vec![
        "mongodb-posts",
        "memcached-posts",
        "postsStorage",
        "readPost",
        "composePost",
        "readTimeline",
        "php-fpm",
        "nginx",
    ];
    let ids: Vec<ServiceId> = rows.iter().map(|n| app.service(n)).collect();
    let (mut sim, mut load) =
        build_sim_with_users(&app, make_cluster(16), 170, UserPopulation::uniform(1000));
    // Scale out the hot tiers so the pinned instance is one of many
    // (misrouting then concentrates ~4x the provisioned per-instance load).
    for name in ["composePost", "readPost", "php-fpm", "readTimeline"] {
        dsb_cluster::scale_to(&mut sim, app.service(name), 4);
    }
    // The heatmap reads per-window mean span latency from a scraped
    // telemetry registry (one gauge per service per 1 s window).
    let mut scraper = Scraper::new(SimDuration::from_secs(1));
    {
        let app = &app;
        let scraper = &mut scraper;
        drive_ticked(&mut sim, &mut load, 0, secs, |_| 2_000.0, &mut |sim, s| {
            if s + 1 == fault_at {
                let compose = app.service("composePost");
                let read = app.service("readPost");
                let ci = sim.instances_of(compose)[0];
                let ri = sim.instances_of(read)[0];
                sim.pin_service(compose, Some(ci));
                sim.pin_service(read, Some(ri));
            }
            if s + 1 == limit_at {
                // Operator response: fix routing and rate-limit.
                sim.pin_service(app.service("composePost"), None);
                sim.pin_service(app.service("readPost"), None);
                sim.set_admission(0.5);
            }
            scraper.tick(sim, SimTime::from_secs(s + 1));
        });
    }
    let reg = scraper.registry();
    let mut grid = Vec::new();
    for &svc in &ids {
        let l = Labels::service(svc.0);
        let mean_of = |w: usize| reg.window_mean(names::SPAN_MEAN_NS, &l, w);
        let mut base = 0.0;
        let mut n = 0.0f64;
        for w in 1..fault_at as usize {
            let m = mean_of(w);
            if m > 0.0 {
                base += m;
                n += 1.0;
            }
        }
        let base = (base / n.max(1.0)).max(1.0);
        grid.push(
            (0..secs as usize)
                .map(|w| {
                    let m = mean_of(w);
                    if m == 0.0 {
                        1.0
                    } else {
                        m / base
                    }
                })
                .collect(),
        );
    }
    heatmap(
        &format!(
            "Fig 22a: misrouting cascade (fault at t={fault_at}s, rate limit at t={limit_at}s)"
        ),
        &rows.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        &grid,
        |v| (v.log10() / 2.0).clamp(0.0, 1.0),
    )
}

/// Goodput at one skew level, normalized by the caller.
pub fn goodput_at_skew(skew: f64, scale: Scale, seed: u64) -> f64 {
    let secs = scale.secs(6);
    // As in `goodput_with_slow`: the skew-collapse *ratio* survives a
    // uniform capacity scale-down, so Quick shrinks harder.
    let factor = match scale {
        Scale::Quick => 16,
        Scale::Full => 8,
    };
    let mut app = crate::harness::shrink(&social::social_network(), factor);
    // The large deployment spreads the stateful front tier over many
    // single-worker instances with per-user session affinity (as the
    // paper's 100-instance EC2 deployment does); a user's requests all
    // land on "their" instance, so hot users overload specific instances.
    let php = app.service("php-fpm");
    {
        let svc = &mut app.spec.services[php.0 as usize];
        svc.workers = dsb_core::WorkerPolicy::Fixed(1);
        svc.lb = dsb_core::LbPolicy::Partition;
        svc.initial_instances = 64;
    }
    let cluster = make_cluster(8);
    // max_qps_under_qos drives a uniform population; emulate by probing
    // with the skewed population directly.
    let ok = |p99: SimDuration, completion: f64| p99 <= app.qos_p99 && completion >= 0.95;
    // The large deployment shards back-ends per user AND uses session
    // affinity on the stateful middle tiers, so a user's traffic lands on
    // "their" instances — the mechanism that makes skew toxic at scale.
    let shard = |sim: &mut dsb_core::Simulation| {
        for (i, svc) in app.spec.services.iter().enumerate() {
            if svc.name.contains("memcached") || svc.name.contains("mongodb") {
                dsb_cluster::scale_to(sim, ServiceId(i as u32), 8);
            }
        }
    };
    let mut lo = 0.0;
    let mut qps = 25.0;
    let mut hi = None;
    for _ in 0..10 {
        let (mut sim, mut load) = build_sim_with_users(
            &app,
            cluster.clone(),
            seed,
            UserPopulation::with_skew(1000, skew),
        );
        shard(&mut sim);
        crate::harness::drive(&mut sim, &mut load, 0, secs, qps);
        let p99 = crate::harness::merged_p99(&sim, secs / 3, secs);
        let (issued, completed, _) = crate::harness::totals(&sim);
        if ok(p99, completed as f64 / issued.max(1) as f64) {
            lo = qps;
            qps *= 2.0;
        } else {
            hi = Some(qps);
            break;
        }
    }
    if hi.is_none() {
        return lo;
    }
    let mut hi = hi.unwrap();
    for _ in 0..4 {
        let mid = (lo + hi) / 2.0;
        let (mut sim, mut load) = build_sim_with_users(
            &app,
            cluster.clone(),
            seed,
            UserPopulation::with_skew(1000, skew),
        );
        shard(&mut sim);
        crate::harness::drive(&mut sim, &mut load, 0, secs, mid);
        let p99 = crate::harness::merged_p99(&sim, secs / 3, secs);
        let (issued, completed, _) = crate::harness::totals(&sim);
        if ok(p99, completed as f64 / issued.max(1) as f64) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Regenerates Fig. 22b: goodput vs request skew.
pub fn run_b(scale: Scale) -> String {
    let skews: Vec<f64> = match scale {
        Scale::Quick => vec![0.0, 95.0, 99.9],
        Scale::Full => vec![0.0, 40.0, 80.0, 95.0, 99.0, 99.9],
    };
    let base = goodput_at_skew(0.0, scale, 171).max(1.0);
    let mut t = Table::new(
        "Fig 22b: max QPS at QoS vs request skew (normalized to skew=0)",
        &["skew (%)", "goodput (QPS)", "normalized"],
    );
    for &s in &skews {
        let g = if s == 0.0 {
            base
        } else {
            goodput_at_skew(s, scale, 171)
        };
        t.row_owned(vec![
            format!("{s:.1}"),
            format!("{g:.0}"),
            format!("{:.2}", g / base),
        ]);
    }
    t.render()
}

/// Goodput with a fraction of slow machines, for micro or mono.
pub fn goodput_with_slow(
    app: &BuiltApp,
    machines: u32,
    slow_fraction: f64,
    scale: Scale,
    seed: u64,
) -> f64 {
    let secs = scale.secs(6);
    // Normalized-goodput ratios survive a uniform capacity scale-down, so
    // Quick shrinks harder to keep the saturation search cheap. Full
    // bisection depth stays: the slow-server degradation is a few tens
    // of percent and a coarser search cannot resolve it.
    let factor = match scale {
        Scale::Quick => 16,
        Scale::Full => 8,
    };
    let app = &crate::harness::shrink(app, factor);
    let mut cluster = make_cluster(machines);
    cluster.trace_sample_prob = 0.0;
    // Spread services wider on bigger clusters — and always at least one
    // extra instance per service: first-fit placement otherwise packs
    // the shrunk app onto the first machine or two, and a "slow server"
    // that hosts nothing degrades nothing.
    let extra = (machines / 20).max(1) as usize;
    crate::harness::max_qps_under_qos(
        app,
        &cluster,
        &move |sim| {
            let mut rng = Rng::new(seed ^ 0x510);
            if extra > 0 {
                for i in 0..sim.app().service_count() {
                    let svc = ServiceId(i as u32);
                    let cur = sim.instance_count(svc);
                    dsb_cluster::scale_to(sim, svc, cur + extra);
                }
            }
            slow_down_machines(sim, slow_fraction, 0.25, &mut rng);
        },
        app.qos_p99,
        secs,
        seed,
    )
}

/// Regenerates Fig. 22c: goodput vs slow-server fraction, micro vs mono.
pub fn run_c(scale: Scale) -> String {
    let sizes: Vec<u32> = match scale {
        // 16 keeps the 5% fault meaningful (one slow machine) at a
        // fraction of the 40-machine sweep's cost; 1% rounds to zero
        // slow machines at both sizes.
        Scale::Quick => vec![16],
        Scale::Full => vec![40, 100, 200],
    };
    let fractions = [0.0, 0.01, 0.05];
    let mut t = Table::new(
        "Fig 22c: goodput vs % slow servers (normalized to 0% per row)",
        &["deployment", "cluster", "0%", "1%", "5%"],
    );
    for (label, app) in [
        ("microservices", social::social_network()),
        ("monolith", monolith::social_monolith()),
    ] {
        for &n in &sizes {
            let mut cells = vec![label.to_string(), format!("{n}")];
            let base = goodput_with_slow(&app, n, 0.0, scale, 172).max(1.0);
            for &f in &fractions {
                let g = if f == 0.0 {
                    base
                } else {
                    goodput_with_slow(&app, n, f, scale, 172)
                };
                cells.push(format!("{:.2}", g / base));
            }
            t.row_owned(cells);
        }
    }
    t.render()
}

/// Regenerates all three panels of Fig. 22.
pub fn run(scale: Scale) -> String {
    format!("{}\n{}\n{}", run_a(scale), run_b(scale), run_c(scale))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skew_destroys_goodput() {
        let base = goodput_at_skew(0.0, Scale::Quick, 1);
        let skewed = goodput_at_skew(99.9, Scale::Quick, 1);
        assert!(base > 0.0);
        assert!(
            skewed < 0.5 * base,
            "skewed {skewed} must be well below base {base}"
        );
    }

    #[test]
    fn misroute_cascade_reaches_frontend() {
        let out = run_a(Scale::Quick);
        assert!(out.contains("nginx"));
        assert!(out.contains("composePost"));
    }
}
