//! Observability runs for the `dsb-report` binary and its goldens: drive
//! a built-in app with a [`dsb_telemetry::Scraper`] attached, evaluate
//! its default SLOs, and render the JSONL / `dsb-top` reports.
//!
//! Everything here is deterministic in `(app, qps, secs, seed)`: the
//! scraper only reads simulation state, the registry iterates in
//! `BTreeMap` order, and all floats are formatted at fixed precision, so
//! both renderings are byte-identical across reruns and golden-testable.

use dsb_apps::BuiltApp;
use dsb_simcore::{SimDuration, SimTime};
use dsb_telemetry::{report, BurnRule, Scraper};

use crate::harness::{build_sim, drive_ticked, make_cluster};

/// Both renderings of one observed run.
#[derive(Debug)]
pub struct Observed {
    /// One JSON object per scrape window, then per alert, then per
    /// root-cause report.
    pub jsonl: String,
    /// The `dsb-top` text table with ALERT / ROOT CAUSE lines.
    pub top: String,
    /// How many SLO burn-rate alerts fired — `dsb-report
    /// --fail-on-alert` turns this into the process exit code.
    pub alerts: usize,
}

/// The `dsb-report` exit decision, split from `main` so the alert →
/// exit-code contract is unit-tested: alerts only fail the run when the
/// caller opted in with `--fail-on-alert`.
pub fn exit_code(obs: &Observed, fail_on_alert: bool) -> u8 {
    u8::from(fail_on_alert && obs.alerts > 0)
}

/// Drives `app` at `qps` for `secs` simulated seconds with a 1-second
/// scrape interval and the app's default SLOs, then renders both report
/// formats.
pub fn observe(app: &BuiltApp, title: &str, qps: f64, secs: u64, seed: u64) -> Observed {
    observe_workers(app, title, qps, secs, seed, 1)
}

/// [`observe`] on the sharded engine with `workers` threads. The
/// parallel-conformance suite byte-compares this against `workers = 1`;
/// the reports must not be able to tell the engines apart.
pub fn observe_workers(
    app: &BuiltApp,
    title: &str,
    qps: f64,
    secs: u64,
    seed: u64,
    workers: usize,
) -> Observed {
    let mut cluster = make_cluster(8);
    cluster.trace_sample_prob = 0.05;
    let (mut sim, mut load) = build_sim(app, cluster, seed);
    sim.set_workers(workers);
    let mut scraper = Scraper::new(SimDuration::from_secs(1));
    for slo in app.slos() {
        scraper = scraper.with_slo(slo);
    }
    {
        let scraper = &mut scraper;
        drive_ticked(&mut sim, &mut load, 0, secs, |_| qps, &mut |sim, s| {
            scraper.tick(sim, SimTime::from_secs(s + 1));
        });
    }
    sim.run_until_idle();
    scraper.flush(&sim);
    let (alerts, causes) = report::analyze(&sim, &scraper, &BurnRule::default());
    Observed {
        jsonl: report::jsonl(&sim, &scraper, &alerts, &causes),
        top: report::top(&sim, &scraper, &alerts, &causes, title),
        alerts: alerts.len(),
    }
}

/// The Fig. 17 case-B shape as an observability demo: `twotier(64, 1)`
/// driven past the single-connection pipe, where the burn-rate alert
/// fires and the root cause names memcached while nginx takes the blame
/// in every span.
pub fn backpressure_demo(secs: u64, seed: u64) -> Observed {
    observe(
        &dsb_apps::twotier::twotier(64, 1),
        "twotier(64, 1) @ 30000 qps (Fig. 17 case B)",
        30_000.0,
        secs,
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backpressure_demo_names_memcached() {
        let obs = backpressure_demo(6, 17);
        assert!(obs.top.contains("ALERT"), "{}", obs.top);
        assert!(
            obs.top.contains("ROOT CAUSE") && obs.top.contains("`memcached`"),
            "{}",
            obs.top
        );
        assert!(obs.jsonl.contains("\"type\":\"root_cause\""));
        assert!(obs.alerts > 0, "the burn must surface in Observed::alerts");
        assert_eq!(exit_code(&obs, true), 1, "--fail-on-alert fails the run");
        assert_eq!(exit_code(&obs, false), 0, "without the flag it passes");
    }

    #[test]
    fn fail_on_alert_passes_a_healthy_run() {
        let quiet = Observed {
            jsonl: String::new(),
            top: String::new(),
            alerts: 0,
        };
        assert_eq!(exit_code(&quiet, true), 0);
        assert_eq!(exit_code(&quiet, false), 0);
    }
}
