//! Quickstart: build the Social Network, drive Poisson load through it,
//! and read end-to-end and per-tier results.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use deathstarbench_sim::apps::{social, BuiltApp};
use deathstarbench_sim::core::{ClusterSpec, RequestType, Simulation};
use deathstarbench_sim::simcore::SimTime;
use deathstarbench_sim::workload::{OpenLoop, UserPopulation};

fn main() {
    // 1. The application: 36 microservices matching the paper's Fig. 4.
    let app: BuiltApp = social::social_network();
    println!(
        "built {} with {} services and {} dependency edges",
        app.spec.name,
        app.spec.service_count(),
        app.spec.edges().len()
    );

    // 2. A cluster: eight 40-core Xeon servers over two racks.
    let cluster = ClusterSpec::xeon_cluster(8, 2);

    // 3. Deterministic simulation + an open-loop generator over the app's
    //    query mix (composePost / readTimeline / repost / …).
    let mut sim = Simulation::new(app.spec.clone(), cluster, 42);
    let mut load = OpenLoop::new(app.mix.clone(), UserPopulation::uniform(1000), 42);

    // 4. Drive 300 QPS for 20 virtual seconds and let everything drain.
    load.drive(&mut sim, SimTime::ZERO, SimTime::from_secs(20), 300.0);
    sim.run_until_idle();

    // 5. Per-query-type end-to-end latency.
    println!("\nper-query-type end-to-end latency:");
    let names = [
        "composeText",
        "composeImage",
        "composeVideo",
        "readTimeline",
        "readPost",
        "repost",
        "login",
        "follow",
        "search",
    ];
    for (i, name) in names.iter().enumerate() {
        if let Some(st) = sim.request_stats(RequestType(i as u32)) {
            println!(
                "  {name:>13}: {:>6} reqs, p50 {:>8}, p99 {:>8}",
                st.completed,
                st.latency.quantile_duration(0.5),
                st.latency.quantile_duration(0.99),
            );
        }
    }

    // 6. Where did the cycles go? (the paper's Fig. 3 / Fig. 14 view)
    let mut net = 0u128;
    let mut appt = 0u128;
    for i in 0..app.spec.service_count() {
        if let Some(s) = sim.collector().service(i as u32) {
            net += s.net_ns;
            appt += s.app_ns;
        }
    }
    println!(
        "\nnetwork processing share of execution: {:.1}% (paper reports 36.3%)",
        net as f64 / (net + appt) as f64 * 100.0
    );
    println!("events processed: {}", sim.events_processed());
}
