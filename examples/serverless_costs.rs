//! Serverless trade-offs (§7, Fig. 21): run the Social Network on EC2
//! containers vs Lambda-style functions (S3 or remote-memory state
//! passing) and compare latency and cost.
//!
//! ```sh
//! cargo run --release --example serverless_costs
//! ```

use deathstarbench_sim::apps::social;
use deathstarbench_sim::core::{ClusterSpec, ServiceId, Simulation};
use deathstarbench_sim::serverless::{
    ec2_cost, lambda_cost_for_run, to_serverless, ExecutionMode, Pricing,
};
use deathstarbench_sim::simcore::{Histogram, SimDuration, SimTime};
use deathstarbench_sim::workload::{OpenLoop, UserPopulation};

fn main() {
    let app = social::social_network();
    // Managed back-ends stay provisioned even under Lambda.
    let backends: Vec<ServiceId> = app
        .spec
        .services
        .iter()
        .enumerate()
        .filter(|(_, s)| s.name.contains("memcached") || s.name.contains("mongodb"))
        .map(|(i, _)| ServiceId(i as u32))
        .collect();

    println!("Social Network, 60 QPS for 30s (intermittent traffic):\n");
    println!(
        "{:>18}  {:>9} {:>9} {:>9}  {:>12}",
        "mode", "p50 (ms)", "p95 (ms)", "p99 (ms)", "cost/10min"
    );
    for mode in [
        ExecutionMode::Ec2,
        ExecutionMode::LambdaS3,
        ExecutionMode::LambdaMem,
    ] {
        let s = to_serverless(&app.spec, mode, &backends);
        let mut cluster = ClusterSpec::xeon_cluster(8, 2);
        cluster.trace_sample_prob = 0.0;
        let mut sim = Simulation::new(s.app, cluster, 21);
        let mut load = OpenLoop::new(app.mix.clone(), UserPopulation::uniform(500), 21);
        load.drive(&mut sim, SimTime::ZERO, SimTime::from_secs(30), 60.0);
        sim.run_until_idle();

        let mut h = Histogram::compact();
        for t in 0..16u32 {
            if let Some(st) = sim.request_stats(deathstarbench_sim::core::RequestType(t)) {
                h.merge(&st.windows.merged_range(2, usize::MAX));
            }
        }
        let factor = 600.0 / 30.0; // normalize to the paper's 10-minute runs
        let cost = match mode {
            ExecutionMode::Ec2 => {
                ec2_cost(&sim, SimDuration::from_secs(30), &Pricing::default()).total() * factor
            }
            _ => {
                lambda_cost_for_run(
                    &sim,
                    s.store,
                    mode == ExecutionMode::LambdaS3,
                    SimDuration::from_secs(30),
                    &Pricing::default(),
                )
                .total()
                    * factor
            }
        };
        println!(
            "{:>18}  {:>9.1} {:>9.1} {:>9.1}  {:>11.2}$",
            mode.label(),
            h.quantile(0.50) as f64 / 1e6,
            h.quantile(0.95) as f64 / 1e6,
            h.quantile(0.99) as f64 / 1e6,
            cost
        );
    }
    println!(
        "\nShape (paper Fig. 21): S3 state passing is far slower than remote\n\
         memory; EC2 is fastest but costs roughly an order of magnitude more\n\
         at this utilization."
    );
}
