//! The Swarm IoT trade-off (§3.6, Fig. 9): run the drone-coordination
//! service with computation at the edge vs in the cloud and sweep load.
//!
//! ```sh
//! cargo run --release --example swarm_edge_vs_cloud
//! ```

use deathstarbench_sim::apps::swarm::{self, SwarmVariant};
use deathstarbench_sim::core::{ClusterSpec, MachineSpec, Simulation};
use deathstarbench_sim::simcore::SimTime;
use deathstarbench_sim::workload::{OpenLoop, UserPopulation};

fn run(variant: SwarmVariant, qps: f64) -> (f64, f64, f64) {
    let app = swarm::swarm(variant);
    let mut cluster = ClusterSpec::xeon_cluster(8, 2);
    for _ in 0..24 {
        cluster.machines.push(MachineSpec::edge_device()); // the drones
    }
    let mut sim = Simulation::new(app.spec.clone(), cluster, 9);
    let mut load = OpenLoop::new(app.mix.clone(), UserPopulation::uniform(24), 9);
    load.drive(&mut sim, SimTime::ZERO, SimTime::from_secs(10), qps);
    sim.advance_to(SimTime::from_secs(10));
    let p99 = |rt| {
        sim.request_stats(rt).map_or(0.0, |s| {
            s.windows.merged_range(3, 10).quantile(0.99) as f64 / 1e6
        })
    };
    let mut issued = 0;
    let mut completed = 0;
    for t in 0..3 {
        if let Some(s) = sim.request_stats(deathstarbench_sim::core::RequestType(t)) {
            issued += s.issued;
            completed += s.completed;
        }
    }
    (
        p99(swarm::IMAGE_RECOG),
        p99(swarm::OBSTACLE_AVOID),
        completed as f64 / issued.max(1) as f64,
    )
}

fn main() {
    println!("Swarm coordination: p99 (ms) per query type, edge vs cloud\n");
    println!(
        "{:>6}  {:>14} {:>14}  {:>14} {:>14}",
        "QPS", "edge imgRec", "cloud imgRec", "edge obstacle", "cloud obstacle"
    );
    for qps in [2.0, 8.0, 30.0, 120.0] {
        let (ei, eo, ec) = run(SwarmVariant::Edge, qps);
        let (ci, co, cc) = run(SwarmVariant::Cloud, qps);
        println!(
            "{qps:>6.0}  {ei:>10.1} ({:>2.0}%) {ci:>9.1} ({:>2.0}%)  {eo:>14.1} {co:>14.1}",
            ec * 100.0,
            cc * 100.0
        );
    }
    println!(
        "\nShape (paper Fig. 9): obstacle avoidance is cheaper at the edge at low\n\
         load (no wireless round trip — offloading it is catastrophic for route\n\
         adjustment), while image recognition oversubscribes the drones' two\n\
         weak cores and achieves far higher throughput in the cloud."
    );
}
