//! Distributed-tracing study of the Social Network: provisioning (§3.8),
//! per-service latency breakdown, and critical-path analysis (§7).
//!
//! ```sh
//! cargo run --release --example social_network_study
//! ```

use deathstarbench_sim::apps::social;
use deathstarbench_sim::cluster::provision;
use deathstarbench_sim::core::{ClusterSpec, ServiceId, Simulation};
use deathstarbench_sim::simcore::SimDuration;
use deathstarbench_sim::trace::critical_path;
use deathstarbench_sim::workload::{OpenLoop, UserPopulation};

fn main() {
    let app = social::social_network();
    let mut cluster = ClusterSpec::xeon_cluster(10, 2);
    cluster.trace_sample_prob = 0.05; // keep 5% of traces whole
    let mut sim = Simulation::new(app.spec.clone(), cluster, 7);
    let mut load = OpenLoop::new(app.mix.clone(), UserPopulation::uniform(1000), 7);

    // §3.8: provision until no tier saturates before the others.
    let services: Vec<ServiceId> = (0..app.spec.service_count())
        .map(|i| ServiceId(i as u32))
        .collect();
    let added = provision(
        &mut sim,
        |sim, from, to| load.drive_fn(sim, from, to, |_| 800.0),
        &services,
        0.7,
        SimDuration::from_secs(3),
        8,
    );
    println!("provisioning rounds (instances added): {added:?}");
    for &svc in &services {
        let n = sim.instance_count(svc);
        if n > 1 {
            println!("  {:>20}: {} instances", app.name_of(svc), n);
        }
    }

    // Steady-state run under tracing.
    let t0 = sim.now();
    load.drive(&mut sim, t0, t0 + SimDuration::from_secs(15), 500.0);
    sim.run_until_idle();

    // Per-service latency breakdown (the paper's §7 analysis).
    println!("\nper-service span latency (top 10 by p99):");
    let mut rows: Vec<(String, u64, f64)> = services
        .iter()
        .filter_map(|&svc| {
            let s = sim.collector().service(svc.0)?;
            Some((
                app.name_of(svc).to_string(),
                s.latency.quantile(0.99),
                s.net_fraction(),
            ))
        })
        .collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1));
    for (name, p99, netf) in rows.iter().take(10) {
        println!(
            "  {name:>22}: p99 {:>9.3}ms  net share {:>5.1}%",
            *p99 as f64 / 1e6,
            netf * 100.0
        );
    }

    // Critical-path attribution over the sampled traces.
    let mut totals: std::collections::HashMap<u32, (u64, u64)> = Default::default();
    for (_, spans) in sim.collector().sampled_traces() {
        for a in critical_path(spans) {
            let e = totals.entry(a.service).or_insert((0, 0));
            e.0 += a.ns;
            e.1 += 1;
        }
    }
    let mut attr: Vec<(&str, u64)> = totals
        .iter()
        .map(|(&svc, &(ns, _))| (app.name_of(ServiceId(svc)), ns))
        .collect();
    attr.sort_by(|a, b| b.1.cmp(&a.1));
    let total: u64 = attr.iter().map(|a| a.1).sum();
    println!("\ncritical-path attribution (share of end-to-end latency):");
    for (name, ns) in attr.iter().take(10) {
        println!("  {name:>22}: {:>5.1}%", *ns as f64 / total as f64 * 100.0);
    }
}
