//! Cluster-management demo (§6, Fig. 17): a utilization-driven autoscaler
//! handles straightforward front-end saturation, but is misled by
//! backpressure from a connection-limited downstream tier.
//!
//! ```sh
//! cargo run --release --example autoscaling_backpressure
//! ```

use deathstarbench_sim::apps::twotier;
use deathstarbench_sim::cluster::{Autoscaler, ScalePolicy};
use deathstarbench_sim::core::{ClusterSpec, Simulation};
use deathstarbench_sim::simcore::{SimDuration, SimTime};
use deathstarbench_sim::workload::{OpenLoop, UserPopulation};

fn scenario(title: &str, nginx_workers: u32, conn_limit: u32, qps: f64) {
    println!("== {title} ==");
    let app = twotier::twotier(nginx_workers, conn_limit);
    let nginx = app.service("nginx");
    let mc = app.service("memcached");
    let mut sim = Simulation::new(app.spec.clone(), ClusterSpec::xeon_cluster(6, 2), 3);
    let mut load = OpenLoop::new(app.mix.clone(), UserPopulation::uniform(100), 3);
    let mut scaler = Autoscaler::new(ScalePolicy {
        cooldown: SimDuration::from_secs(10),
        max_instances: 8,
        ..ScalePolicy::default()
    });
    scaler.manage(nginx);
    scaler.manage(mc);
    for s in 0..40u64 {
        let (a, b) = (SimTime::from_secs(s), SimTime::from_secs(s + 1));
        load.drive(&mut sim, a, b, qps);
        sim.advance_to(b);
        scaler.tick(&mut sim);
        if s % 5 == 4 {
            let p99 = sim.collector().service(nginx.0).map_or(0.0, |st| {
                st.latency_windows.quantile(s as usize, 0.99) as f64 / 1e6
            });
            println!(
                "  t={s:>2}s  nginx p99 {:>9.2}ms  nginx occ {:>4.2}  mc occ {:>4.2}  nginx insts {}",
                p99,
                sim.occupancy(nginx),
                sim.occupancy(mc),
                sim.instance_count(nginx)
            );
        }
    }
    println!("  autoscaler actions: {}\n", scaler.events().len());
}

fn main() {
    // Case A: nginx itself is the bottleneck; scaling it out works.
    scenario(
        "case A: nginx saturation (autoscaling helps)",
        4,
        4096,
        30_000.0,
    );
    // Case B: a 1-connection pool toward memcached backpressures nginx;
    // nginx *looks* saturated (workers blocked), memcached looks idle, and
    // scaling nginx does not fix the bottleneck.
    scenario(
        "case B: memcached backpressure (autoscaler misled)",
        64,
        1,
        30_000.0,
    );
}
