#!/bin/sh
# Tier-1 gate for DeathStarBench-sim. Fully offline and hermetic: the
# workspace has no crates-io dependencies, so `--offline` always works
# from a clean checkout with no network and no vendored registry.
#
#   ./ci.sh          # build + test + format check
#
# Golden fixtures: after an intentional change to the timing model,
# regenerate with `UPDATE_GOLDENS=1 cargo test --offline --test goldens`
# and commit the diff under tests/goldens/.
set -eu

cd "$(dirname "$0")"

echo "==> cargo build --workspace --release --offline"
cargo build --workspace --release --offline

echo "==> cargo test -q --workspace --offline"
cargo test -q --workspace --offline

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> dsb-lint (spec pass + determinism source pass)"
cargo run -q --release --offline -p dsb-analyzer --bin dsb-lint

echo "ci.sh: all green"
