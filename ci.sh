#!/bin/sh
# Tier-1 gate for DeathStarBench-sim. Fully offline and hermetic: the
# workspace has no crates-io dependencies, so `--offline` always works
# from a clean checkout with no network and no vendored registry.
#
#   ./ci.sh            # build + test + format check + dsb-lint
#   ./ci.sh --bless    # regenerate all golden fixtures, then run the gate
#
# Golden fixtures live under tests/goldens/. After an intentional change
# to the timing model or the analyzer, run `./ci.sh --bless` locally and
# commit the diff. The gate itself must never regenerate fixtures: if
# UPDATE_GOLDENS leaked into a CI environment, every golden test would
# silently rewrite its own expectation and pass.
set -eu

cd "$(dirname "$0")"

if [ "${1:-}" = "--bless" ]; then
    echo "==> regenerating golden fixtures (UPDATE_GOLDENS=1)"
    UPDATE_GOLDENS=1 cargo test -q --offline --test goldens --test analyzer_report
    git --no-pager diff --stat -- tests/goldens/ || true
fi

if [ -n "${CI:-}" ] && [ -n "${UPDATE_GOLDENS:-}" ]; then
    echo "ci.sh: UPDATE_GOLDENS is set in a CI environment." >&2
    echo "Golden tests would overwrite their fixtures instead of checking" >&2
    echo "them. Unset it; regenerate locally with ./ci.sh --bless." >&2
    exit 1
fi

echo "==> cargo build --workspace --release --offline"
cargo build --workspace --release --offline

echo "==> cargo test -q --workspace --offline"
cargo test -q --workspace --offline

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> dsb-lint (spec pass + determinism source pass)"
cargo run -q --release --offline -p dsb-analyzer --bin dsb-lint

echo "ci.sh: all green"
