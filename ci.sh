#!/bin/sh
# Tier-1 gate for DeathStarBench-sim. Fully offline and hermetic: the
# workspace has no crates-io dependencies, so `--offline` always works
# from a clean checkout with no network and no vendored registry.
#
#   ./ci.sh            # build + test + format check + dsb-lint
#   ./ci.sh --bless    # regenerate all golden fixtures, then run the gate
#
# Golden fixtures live under tests/goldens/. After an intentional change
# to the timing model or the analyzer, run `./ci.sh --bless` locally and
# commit the diff. The gate itself must never regenerate fixtures: if
# UPDATE_GOLDENS leaked into a CI environment, every golden test would
# silently rewrite its own expectation and pass.
#
# The test pass runs in release (the simulation-heavy suites are ~10x
# slower unoptimized) and is held to a hard wall-clock budget, guarding
# against slow-test regressions like the 190 s end_to_end suite fixed in
# PR 1. Per-suite times are printed so the offender is obvious.
set -eu

cd "$(dirname "$0")"

TEST_BUDGET_S=120

if [ "${1:-}" = "--bless" ]; then
    echo "==> regenerating golden fixtures (UPDATE_GOLDENS=1)"
    UPDATE_GOLDENS=1 cargo test -q --release --offline \
        --test goldens --test analyzer_report --test dsb_report --test chaos
    git --no-pager diff --stat -- tests/goldens/ || true
fi

if [ -n "${CI:-}" ] && [ -n "${UPDATE_GOLDENS:-}" ]; then
    echo "ci.sh: UPDATE_GOLDENS is set in a CI environment." >&2
    echo "Golden tests would overwrite their fixtures instead of checking" >&2
    echo "them. Unset it; regenerate locally with ./ci.sh --bless." >&2
    exit 1
fi

echo "==> cargo build --workspace --release --offline --all-targets"
# --all-targets prebuilds the test harnesses too, so the timed test pass
# below measures test runtime, not leftover compilation.
cargo build --workspace --release --offline --all-targets

echo "==> cargo test --workspace --release --offline (budget: ${TEST_BUDGET_S}s)"
# The parallel-conformance suite (tests/parallel_conformance.rs) rides
# inside this pass: any byte divergence between the serial and sharded
# engines fails its assertions, which fails the pass — that IS the
# hard-fail gate. That includes the chaos conformance run (two fault
# scenarios, workers 1/2/4/8, full timeline + JSONL byte-compared) and
# the chaos detection goldens (tests/chaos.rs, scorer held to
# precision = recall = 1.0). It appends per-run timings to this file,
# aggregated and printed after the pass; clear stale samples first.
conf_times="target/conformance_times.txt"
rm -f "$conf_times"
test_log=$(mktemp)
trap 'rm -f "$test_log"' EXIT
test_start=$(date +%s)
if ! cargo test --workspace --release --offline >"$test_log" 2>&1; then
    cat "$test_log"
    echo "ci.sh: test pass FAILED" >&2
    exit 1
fi
test_end=$(date +%s)
test_wall=$((test_end - test_start))
# Per-suite wall time, as reported by each test binary.
awk '
    / Running / {
        n = $0
        sub(/^.*\(/, "", n); sub(/\).*$/, "", n)
        sub(/^.*\//, "", n); sub(/-[0-9a-f]+$/, "", n)
        name = n
    }
    / Doc-tests / { name = "doc-tests " $2 }
    /^test result:/ {
        t = $0
        sub(/^.*finished in /, "", t); sub(/s$/, "", t)
        printf "    %-24s %7.2fs  (%s)\n", name, t + 0, $4
    }
' "$test_log"
if [ -f "$conf_times" ]; then
    echo "    parallel-conformance wall time by worker count:"
    sort "$conf_times" | awk '
        { w = $1; sub(/^workers=/, "", w)
          t = $2; sub(/^secs=/, "", t)
          secs[w] += t; runs[w] += 1 }
        END { for (w in secs)
                  printf "        workers=%s %7.2fs  (%d runs)\n", w, secs[w], runs[w] }
    ' | sort -t= -k2 -n
fi
echo "    test pass total: ${test_wall}s (budget ${TEST_BUDGET_S}s)"
if [ "$test_wall" -gt "$TEST_BUDGET_S" ]; then
    echo "ci.sh: tier-1 test pass took ${test_wall}s, over the" >&2
    echo "${TEST_BUDGET_S}s budget. Shrink or rescale the slow suite" >&2
    echo "(per-suite times above) instead of raising the budget." >&2
    exit 1
fi

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo doc --workspace --no-deps --offline (warn-free)"
# rustdoc warnings (broken intra-doc links, bad code fences) regress
# silently otherwise; docs are a first-class deliverable here.
RUSTDOCFLAGS="-D warnings" cargo doc -q --workspace --no-deps --offline

echo "==> dsb-lint (spec pass + determinism source pass, budget: 5s)"
# The lint gate must stay cheap enough to run on every commit: the
# source pass lexes all of crates/*/src and the spec pass runs eight
# calibration sims, so a pathological regression in either shows up
# here as a hard failure.
LINT_BUDGET_S=5
lint_start=$(date +%s)
cargo run -q --release --offline -p dsb-analyzer --bin dsb-lint
lint_end=$(date +%s)
lint_wall=$((lint_end - lint_start))
echo "    dsb-lint wall time: ${lint_wall}s (budget ${LINT_BUDGET_S}s)"
if [ "$lint_wall" -gt "$LINT_BUDGET_S" ]; then
    echo "ci.sh: dsb-lint took ${lint_wall}s, over the ${LINT_BUDGET_S}s" >&2
    echo "budget. Profile the lexer/spec passes instead of raising it." >&2
    exit 1
fi

# Throughput watchdog over both bench metrics, against a committed
# baseline file. A fresh value more than 10% below the baseline prints
# a warning (shared CI machines are noisy); more than 25% below is
# treated as a real regression and fails the run. An *unparseable*
# metric is always a hard failure — a silent parse miss would turn the
# whole gate into a no-op, which is exactly how the old requests-only
# check rotted.
bench_gate() {
    bench_log=$1
    baseline=$2
    echo "    committed baseline (${baseline}):"
    sed 's/^/    /' "$baseline"
    for metric in requests_per_wall_second events_per_wall_second; do
        fresh=$(sed -n "s/.*\"${metric}\": \([0-9]*\).*/\1/p" "$bench_log" | head -n 1)
        base=$(sed -n "s/.*\"${metric}\": \([0-9]*\).*/\1/p" "$baseline" | head -n 1)
        if [ -z "$fresh" ] || [ -z "$base" ] || [ "$base" -le 0 ]; then
            echo "ci.sh: could not parse ${metric} from the fresh bench" >&2
            echo "output and/or ${baseline}; the perf gate cannot run." >&2
            rm -f "$bench_log"
            exit 1
        fi
        floor_warn=$((base * 9 / 10))
        floor_fail=$((base * 3 / 4))
        if [ "$fresh" -lt "$floor_fail" ]; then
            echo "ci.sh: ${metric} ${fresh} is >25% below the committed" >&2
            echo "baseline ${base} (hard floor ${floor_fail}). Find the" >&2
            echo "regression before re-baselining ${baseline}." >&2
            rm -f "$bench_log"
            exit 1
        elif [ "$fresh" -lt "$floor_warn" ]; then
            echo "ci.sh: WARNING: ${metric} ${fresh} is >10% below the" >&2
            echo "committed baseline ${base} (floor ${floor_warn})." >&2
            echo "If this reproduces on a quiet machine, find the" >&2
            echo "regression before re-baselining ${baseline}." >&2
        fi
    done
    rm -f "$bench_log"
}

echo "==> dsb-bench (perf baseline: fig17 two-tier kernel)"
# The committed BENCH_0.json is the baseline snapshot; the gate never
# overwrites it (that would defeat its purpose as a regression anchor),
# it re-runs the kernel and prints the fresh numbers next to it for
# eyeballing. Regenerate deliberately with:
#   cargo run --release -p dsb-bench --bin dsb-bench -- BENCH_0.json
if [ -f BENCH_0.json ]; then
    bench_log=$(mktemp)
    cargo run -q --release --offline -p dsb-bench --bin dsb-bench | tee "$bench_log"
    bench_gate "$bench_log" BENCH_0.json
else
    cargo run -q --release --offline -p dsb-bench --bin dsb-bench -- BENCH_0.json
fi

echo "==> dsb-bench --workers 4 (parallel baseline: fig22 sharded kernel)"
# BENCH_1 is the sharded engine's anchor: the event-dense fig22 kernel
# at workers=4, with the serial reference re-run in-process (the binary
# asserts identical events and completions, so a conformance break here
# fails before any number is printed). parallel_speedup is honest about
# host_cpus: on a 1-CPU CI box it reads < 1x, and the regression signal
# is events_per_wall_second.
if [ -f BENCH_1.json ]; then
    bench_log=$(mktemp)
    cargo run -q --release --offline -p dsb-bench --bin dsb-bench -- --workers 4 | tee "$bench_log"
    # Speedup expectations only mean something with real cores to run
    # the shards on: on a 1-CPU host the sharded engine cannot beat the
    # serial one, so stay quiet rather than print an expectation the
    # hardware cannot meet. The per-second throughput gates below run
    # unchanged either way.
    host_cpus=$(sed -n 's/.*"host_cpus": \([0-9]*\).*/\1/p' "$bench_log" | head -n 1)
    speedup=$(sed -n 's/.*"parallel_speedup": \([0-9.]*\).*/\1/p' "$bench_log" | head -n 1)
    if [ "${host_cpus:-1}" -gt 1 ]; then
        echo "    parallel_speedup ${speedup:-?}x on ${host_cpus} cpus (expected > 1x)"
    fi
    bench_gate "$bench_log" BENCH_1.json
else
    cargo run -q --release --offline -p dsb-bench --bin dsb-bench -- --workers 4 BENCH_1.json
fi

# The tier-1 differential sweep (64 seeds) rides inside the test pass
# above via tests/differential.rs. The extended sweep is opt-in:
#   DIFF_SEEDS=1000 cargo run --release -p dsb-gen --bin dsb-diff

echo "ci.sh: all green"
